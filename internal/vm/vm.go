package vm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"privateer/internal/ir"
	"privateer/internal/obs"
)

// PageSize is the simulated page size in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Prot is a page-protection mode.
type Prot uint8

const (
	// ProtNone forbids all access.
	ProtNone Prot = iota
	// ProtRead allows loads only.
	ProtRead
	// ProtReadWrite allows loads and stores.
	ProtReadWrite
)

func (p Prot) String() string {
	switch p {
	case ProtNone:
		return "---"
	case ProtRead:
		return "r--"
	case ProtReadWrite:
		return "rw-"
	}
	return "???"
}

// Fault describes an invalid memory access.
type Fault struct {
	// Addr is the faulting virtual address.
	Addr uint64
	// Write distinguishes store faults from load faults.
	Write bool
	// Reason explains the fault.
	Reason string
}

func (f *Fault) Error() string {
	kind := "load"
	if f.Write {
		kind = "store"
	}
	return fmt.Sprintf("memory fault: %s at %#x (%s heap): %s",
		kind, f.Addr, ir.HeapOf(f.Addr), f.Reason)
}

type page struct {
	data [PageSize]byte
}

type pageEntry struct {
	pg *page
	// cow marks the page as shared with another address space; the first
	// write duplicates it.
	cow bool
}

// heapState is the allocator state of one logical heap.
type heapState struct {
	// brk is the bump pointer (next unallocated address).
	brk uint64
	// free maps a rounded size class to a free list of addresses.
	free map[uint64][]uint64
	// objects tracks live allocations (address -> size) for free() and
	// for object-count queries.
	objects map[uint64]uint64
	// liveCount is the number of live allocations (len(objects), cached
	// for hot paths).
	liveCount int
	// allocBytes totals bytes ever allocated from this heap.
	allocBytes uint64
}

func newHeapState(h ir.HeapKind) *heapState {
	return &heapState{
		// Skip the first page so address 0 (and small offsets) stay
		// unmapped: null-pointer dereferences must fault.
		brk:     h.Base() + PageSize,
		free:    map[uint64][]uint64{},
		objects: map[uint64]uint64{},
	}
}

func (hs *heapState) clone() *heapState {
	c := &heapState{
		brk:        hs.brk,
		free:       make(map[uint64][]uint64, len(hs.free)),
		objects:    make(map[uint64]uint64, len(hs.objects)),
		liveCount:  hs.liveCount,
		allocBytes: hs.allocBytes,
	}
	for k, v := range hs.free {
		c.free[k] = append([]uint64(nil), v...)
	}
	for k, v := range hs.objects {
		c.objects[k] = v
	}
	return c
}

// Stats counts memory-system events, exposed for the paper's overhead
// accounting (Figure 8) and for tests.
type Stats struct {
	// PagesMapped counts demand-zero page instantiations.
	PagesMapped int64
	// PagesCopied counts copy-on-write duplications.
	PagesCopied int64
	// BytesRead and BytesWritten total access volume.
	BytesRead    int64
	BytesWritten int64
}

// tlbEntry is one cached translation of the software TLB: page number to
// resolved page. A read entry proves the translation passed its protection
// check; a write entry additionally proves the page is privately owned
// (copy-on-write already resolved), so a hit may store directly.
type tlbEntry struct {
	pn uint64
	pg *page
}

// tlbSize is the number of direct-mapped TLB entries (a power of two).
const tlbSize = 64

// AddressSpace is one simulated process's view of memory: a page table plus
// per-heap allocator state and protections.
type AddressSpace struct {
	pages map[uint64]*pageEntry // keyed by addr >> PageShift
	// pagesShared marks the page table as shared with one or more clones
	// (lazy copy-on-write cloning): every page is then implicitly COW and
	// the table is materialized privately before any mutation. A map
	// referenced by two or more spaces is never mutated.
	pagesShared bool
	heaps       [ir.NumHeaps]*heapState
	prot        [ir.NumHeaps]Prot

	// rtlb and wtlb are small direct-mapped software TLBs consulted before
	// the page map: rtlb caches protection-checked read translations, wtlb
	// caches write translations to privately owned pages. Both are flushed
	// on Clone, SetProt, ResetHeap and CopyHeapFrom; COW resolution updates
	// the affected entry in place.
	rtlb [tlbSize]tlbEntry
	wtlb [tlbSize]tlbEntry

	// Stats accumulates event counts; shared pointer across clones when
	// cloned with CloneSharingStats (updates then go through atomics so
	// concurrent worker clones may aggregate into one structure).
	Stats *Stats
	// statsAtomic selects atomic Stats updates; set once Stats may be
	// shared with concurrently executing clones.
	statsAtomic bool

	// Occ, when non-nil, mirrors this space's per-heap allocator totals in
	// atomic counters for live introspection (see occupancy.go). Clones do
	// NOT inherit it: worker spaces are scratch views, and the master's
	// occupancy is the program's authoritative heap state.
	Occ *HeapOccupancy

	// Trace receives page-layer events (COW duplication, TLB flushes,
	// protection faults); nil disables emission. Clones inherit the tracer.
	Trace *obs.Tracer
	// TraceWorker labels this space's events (-1 = master); TraceInv is the
	// current region invocation (-1 = outside any region).
	TraceWorker int
	TraceInv    int64
}

// addStat bumps one Stats counter, atomically when the Stats structure may
// be shared with concurrently executing clones.
func (as *AddressSpace) addStat(p *int64, n int64) {
	if as.statsAtomic {
		atomic.AddInt64(p, n)
	} else {
		*p += n
	}
}

// flushTLB drops every cached translation; cause labels the trace event.
func (as *AddressSpace) flushTLB(cause string) {
	as.rtlb = [tlbSize]tlbEntry{}
	as.wtlb = [tlbSize]tlbEntry{}
	as.Trace.Instant(obs.Event{Kind: obs.KTLBFlush,
		Invocation: as.TraceInv, Worker: as.TraceWorker, Iter: -1, Cause: cause})
}

// materialize gives a space sharing its page table a private copy, with
// every page marked copy-on-write — the deferred half of lazy cloning.
func (as *AddressSpace) materialize() {
	m := make(map[uint64]*pageEntry, len(as.pages))
	for k, e := range as.pages {
		m[k] = &pageEntry{pg: e.pg, cow: true}
	}
	as.pages = m
	as.pagesShared = false
}

// NewAddressSpace returns an empty address space with every heap mapped
// read-write and empty.
func NewAddressSpace() *AddressSpace {
	as := &AddressSpace{pages: map[uint64]*pageEntry{}, Stats: &Stats{},
		TraceWorker: -1, TraceInv: -1}
	for h := ir.HeapKind(0); h < ir.NumHeaps; h++ {
		as.heaps[h] = newHeapState(h)
		as.prot[h] = ProtReadWrite
	}
	return as
}

// Clone returns a copy-on-write duplicate of the address space, as fork
// would produce: both spaces share physical pages until either writes.
// Cloning is lazy: parent and child share the page table itself, and each
// side materializes a private table (all pages marked COW) only on its
// first page-table mutation, so spawning a read-mostly worker costs O(heap
// allocator state), not O(mapped pages).
func (as *AddressSpace) Clone() *AddressSpace {
	as.pagesShared = true
	as.flushTLB("clone")
	c := &AddressSpace{pages: as.pages, pagesShared: true, Stats: &Stats{},
		Trace: as.Trace, TraceWorker: as.TraceWorker, TraceInv: as.TraceInv}
	for h := ir.HeapKind(0); h < ir.NumHeaps; h++ {
		c.heaps[h] = as.heaps[h].clone()
		c.prot[h] = as.prot[h]
	}
	return c
}

// CloneSharingStats is Clone, except the child accumulates into the
// parent's Stats structure instead of a fresh one. The speculative runtime
// spawns its workers this way so fork-style page-copy counts aggregate
// across the whole worker fleet (the paper's Figure 8 overhead accounting).
// Both spaces switch to atomic Stats updates, since clones typically run on
// concurrent worker goroutines.
func (as *AddressSpace) CloneSharingStats() *AddressSpace {
	as.statsAtomic = true
	c := as.Clone()
	c.Stats = as.Stats
	c.statsAtomic = true
	return c
}

// SetProt sets the protection of an entire logical heap, the granularity at
// which Privateer manipulates page maps.
func (as *AddressSpace) SetProt(h ir.HeapKind, p Prot) {
	as.prot[h] = p
	as.flushTLB("setprot")
}

// ProtOf returns the protection of heap h.
func (as *AddressSpace) ProtOf(h ir.HeapKind) Prot { return as.prot[h] }

// pageFor returns the page containing addr, instantiating a demand-zero page
// if needed; forWrite resolves copy-on-write. Callers must have passed
// checkProt for the access: pageFor caches the translation in the TLB, and a
// TLB hit implies the protection check already succeeded.
func (as *AddressSpace) pageFor(addr uint64, forWrite bool) *page {
	key := addr >> PageShift
	if as.pagesShared {
		// Reads of already-mapped pages may go through the shared table;
		// any mutation (instantiation or COW resolution) first takes a
		// private copy of it.
		if e := as.pages[key]; e != nil && !forWrite {
			as.rtlb[key&(tlbSize-1)] = tlbEntry{pn: key, pg: e.pg}
			return e.pg
		}
		as.materialize()
	}
	e := as.pages[key]
	if e == nil {
		e = &pageEntry{pg: &page{}}
		as.pages[key] = e
		as.addStat(&as.Stats.PagesMapped, 1)
	} else if forWrite && e.cow {
		dup := &page{data: e.pg.data}
		e.pg = dup
		e.cow = false
		as.addStat(&as.Stats.PagesCopied, 1)
		as.Trace.Instant(obs.Event{Kind: obs.KCOWCopy,
			Invocation: as.TraceInv, Worker: as.TraceWorker, Iter: -1,
			A: int64(key << PageShift)})
	}
	idx := key & (tlbSize - 1)
	// COW resolution replaced the page this space reads at key, so the
	// read entry is refreshed alongside the write entry.
	as.rtlb[idx] = tlbEntry{pn: key, pg: e.pg}
	if forWrite {
		as.wtlb[idx] = tlbEntry{pn: key, pg: e.pg}
	}
	return e.pg
}

func (as *AddressSpace) checkProt(addr uint64, size uint64, write bool) error {
	h := ir.HeapOf(addr)
	p := as.prot[h]
	if p == ProtNone || (write && p != ProtReadWrite) {
		as.Trace.Instant(obs.Event{Kind: obs.KProtFault,
			Invocation: as.TraceInv, Worker: as.TraceWorker, Iter: -1,
			A: int64(addr), Cause: "protection " + p.String()})
		return &Fault{Addr: addr, Write: write, Reason: "protection " + p.String()}
	}
	// Guard the unmapped null page of the system heap.
	if addr < PageSize {
		return &Fault{Addr: addr, Write: write, Reason: "null page"}
	}
	return nil
}

// ReadBytes copies size bytes starting at addr into dst.
func (as *AddressSpace) ReadBytes(addr uint64, dst []byte) error {
	if err := as.checkProt(addr, uint64(len(dst)), false); err != nil {
		return err
	}
	as.addStat(&as.Stats.BytesRead, int64(len(dst)))
	for len(dst) > 0 {
		off := addr & (PageSize - 1)
		n := uint64(PageSize) - off
		if n > uint64(len(dst)) {
			n = uint64(len(dst))
		}
		pg := as.pageFor(addr, false)
		copy(dst[:n], pg.data[off:off+n])
		dst = dst[n:]
		addr += n
	}
	return nil
}

// WriteBytes copies src into memory starting at addr.
func (as *AddressSpace) WriteBytes(addr uint64, src []byte) error {
	if err := as.checkProt(addr, uint64(len(src)), true); err != nil {
		return err
	}
	as.addStat(&as.Stats.BytesWritten, int64(len(src)))
	for len(src) > 0 {
		off := addr & (PageSize - 1)
		n := uint64(PageSize) - off
		if n > uint64(len(src)) {
			n = uint64(len(src))
		}
		pg := as.pageFor(addr, true)
		copy(pg.data[off:off+n], src[:n])
		src = src[n:]
		addr += n
	}
	return nil
}

// loadLE reads a size-byte (1, 2, 4 or 8) little-endian word from b.
func loadLE(b []byte, size int64) uint64 {
	switch size {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	default:
		return binary.LittleEndian.Uint64(b)
	}
}

// storeLE writes the low size (1, 2, 4 or 8) bytes of val to b,
// little-endian.
func storeLE(b []byte, size int64, val uint64) {
	switch size {
	case 1:
		b[0] = byte(val)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(val))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(val))
	default:
		binary.LittleEndian.PutUint64(b, val)
	}
}

// pow2Size reports whether size is a standard access width (1, 2, 4, 8).
func pow2Size(size int64) bool {
	return size > 0 && size <= 8 && size&(size-1) == 0
}

// Read loads size (1, 2, 4 or 8) bytes at addr as a little-endian,
// zero-extended word.
func (as *AddressSpace) Read(addr uint64, size int64) (uint64, error) {
	off := addr & (PageSize - 1)
	if off+uint64(size) <= PageSize && pow2Size(size) {
		// Single-page aligned-width access: TLB hit skips the protection
		// check (proven at fill time) and the page-map lookup.
		pn := addr >> PageShift
		if e := &as.rtlb[pn&(tlbSize-1)]; e.pn == pn && e.pg != nil {
			as.addStat(&as.Stats.BytesRead, size)
			return loadLE(e.pg.data[off:], size), nil
		}
		if err := as.checkProt(addr, uint64(size), false); err != nil {
			return 0, err
		}
		as.addStat(&as.Stats.BytesRead, size)
		return loadLE(as.pageFor(addr, false).data[off:], size), nil
	}
	if err := as.checkProt(addr, uint64(size), false); err != nil {
		return 0, err
	}
	var buf [8]byte
	if err := as.ReadBytes(addr, buf[:size]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]) & sizeMask(size), nil
}

// Write stores the low size bytes of val at addr, little-endian.
func (as *AddressSpace) Write(addr uint64, size int64, val uint64) error {
	off := addr & (PageSize - 1)
	if off+uint64(size) <= PageSize && pow2Size(size) {
		// A write-TLB hit proves the page is privately owned and the heap
		// writable, so the store lands directly.
		pn := addr >> PageShift
		if e := &as.wtlb[pn&(tlbSize-1)]; e.pn == pn && e.pg != nil {
			as.addStat(&as.Stats.BytesWritten, size)
			storeLE(e.pg.data[off:], size, val)
			return nil
		}
		if err := as.checkProt(addr, uint64(size), true); err != nil {
			return err
		}
		as.addStat(&as.Stats.BytesWritten, size)
		storeLE(as.pageFor(addr, true).data[off:], size, val)
		return nil
	}
	if err := as.checkProt(addr, uint64(size), true); err != nil {
		return err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], val)
	return as.WriteBytes(addr, buf[:size])
}

// ReadF64 loads an IEEE binary64 at addr.
func (as *AddressSpace) ReadF64(addr uint64) (float64, error) {
	w, err := as.Read(addr, 8)
	return math.Float64frombits(w), err
}

// WriteF64 stores an IEEE binary64 at addr.
func (as *AddressSpace) WriteF64(addr uint64, v float64) error {
	return as.Write(addr, 8, math.Float64bits(v))
}

func sizeMask(size int64) uint64 {
	if size >= 8 {
		return ^uint64(0)
	}
	return (uint64(1) << (8 * size)) - 1
}

const allocAlign = 16

// Alloc carves size bytes out of logical heap h and returns the object's
// base address. Objects never span a heap boundary and inherit the heap's
// address tag.
func (as *AddressSpace) Alloc(h ir.HeapKind, size uint64) (uint64, error) {
	if size == 0 {
		size = 1
	}
	hs := as.heaps[h]
	rounded := (size + allocAlign - 1) &^ uint64(allocAlign-1)
	var addr uint64
	if lst := hs.free[rounded]; len(lst) > 0 {
		addr = lst[len(lst)-1]
		hs.free[rounded] = lst[:len(lst)-1]
	} else {
		addr = hs.brk
		hs.brk += rounded
		if ir.HeapOf(hs.brk) != h {
			return 0, fmt.Errorf("vm: heap %s exhausted (16 TB)", h)
		}
	}
	hs.objects[addr] = rounded
	hs.liveCount++
	hs.allocBytes += size
	if as.Occ != nil {
		as.Occ.alloc(h, size, rounded)
	}
	return addr, nil
}

// Free releases the object at addr, which must have been returned by Alloc
// on the same (or an ancestor) address space.
func (as *AddressSpace) Free(addr uint64) error {
	h := ir.HeapOf(addr)
	hs := as.heaps[h]
	rounded, live := hs.objects[addr]
	if !live {
		return fmt.Errorf("vm: free of non-allocated address %#x (%s heap)", addr, h)
	}
	delete(hs.objects, addr)
	hs.liveCount--
	hs.free[rounded] = append(hs.free[rounded], addr)
	if as.Occ != nil {
		as.Occ.free(h, rounded)
	}
	return nil
}

// ObjectSize returns the rounded size of the live object at addr, or 0.
func (as *AddressSpace) ObjectSize(addr uint64) uint64 {
	return as.heaps[ir.HeapOf(addr)].objects[addr]
}

// LiveObjects returns the number of live allocations in heap h, used to
// validate short-lived object lifetimes at iteration boundaries.
func (as *AddressSpace) LiveObjects(h ir.HeapKind) int { return as.heaps[h].liveCount }

// AllocatedBytes returns total bytes ever allocated from heap h.
func (as *AddressSpace) AllocatedBytes(h ir.HeapKind) uint64 { return as.heaps[h].allocBytes }

// Brk returns the bump pointer of heap h (its high-water mark).
func (as *AddressSpace) Brk(h ir.HeapKind) uint64 { return as.heaps[h].brk }

// ResetHeap discards all allocations and contents of heap h, returning it to
// its initial empty state (fresh pages on next touch).
func (as *AddressSpace) ResetHeap(h ir.HeapKind) {
	if as.pagesShared {
		as.materialize()
	}
	as.heaps[h] = newHeapState(h)
	lo, hi := h.Base()>>PageShift, (h.Base()+(uint64(1)<<ir.TagShift))>>PageShift
	for k := range as.pages {
		if k >= lo && k < hi {
			delete(as.pages, k)
		}
	}
	if as.Occ != nil {
		as.Occ.resync(h, as.heaps[h])
	}
	as.flushTLB("reset-heap")
}

// CopyHeapFrom replaces this space's view of heap h with src's, sharing
// pages copy-on-write. This is the simulated equivalent of the recovery
// path's "several calls to mmap" that install a checkpoint's heap images.
func (as *AddressSpace) CopyHeapFrom(src *AddressSpace, h ir.HeapKind) {
	if as.pagesShared {
		as.materialize()
	}
	lo, hi := h.Base()>>PageShift, (h.Base()+(uint64(1)<<ir.TagShift))>>PageShift
	for k := range as.pages {
		if k >= lo && k < hi {
			delete(as.pages, k)
		}
	}
	for k, e := range src.pages {
		if k >= lo && k < hi {
			// A shared table is already implicitly COW everywhere (and must
			// not be mutated while other spaces reference it).
			if !src.pagesShared {
				e.cow = true
			}
			as.pages[k] = &pageEntry{pg: e.pg, cow: true}
		}
	}
	as.heaps[h] = src.heaps[h].clone()
	if as.Occ != nil {
		as.Occ.resync(h, as.heaps[h])
	}
	as.flushTLB("copy-heap")
	src.flushTLB("copy-heap")
}

// DirtyPages calls visit for every page this address space owns privately —
// pages written since the last Clone (COW-resolved) or newly instantiated.
// The data slice aliases live memory and must not be retained.
func (as *AddressSpace) DirtyPages(visit func(base uint64, data []byte)) {
	if as.pagesShared {
		return // table shared since the last Clone: nothing written
	}
	for k, e := range as.pages {
		if !e.cow {
			visit(k<<PageShift, e.pg.data[:])
		}
	}
}

// PageData returns the contents of the page containing addr without
// instantiating it; ok is false for never-touched pages (all zero).
func (as *AddressSpace) PageData(addr uint64) ([]byte, bool) {
	e := as.pages[addr>>PageShift]
	if e == nil {
		return nil, false
	}
	return e.pg.data[:], true
}

// HeapPages calls visit for every instantiated page of heap h with the
// page's base address and contents. The contents slice aliases live memory
// and must not be retained.
func (as *AddressSpace) HeapPages(h ir.HeapKind, visit func(base uint64, data []byte)) {
	lo, hi := h.Base()>>PageShift, (h.Base()+(uint64(1)<<ir.TagShift))>>PageShift
	for k, e := range as.pages {
		if k >= lo && k < hi {
			visit(k<<PageShift, e.pg.data[:])
		}
	}
}
