package vm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"privateer/internal/ir"
	"privateer/internal/obs"
)

// PageSize is the simulated page size in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Prot is a page-protection mode.
type Prot uint8

const (
	// ProtNone forbids all access.
	ProtNone Prot = iota
	// ProtRead allows loads only.
	ProtRead
	// ProtReadWrite allows loads and stores.
	ProtReadWrite
)

// String renders the protection in ls -l style ("rw-", "r--", "---").
func (p Prot) String() string {
	switch p {
	case ProtNone:
		return "---"
	case ProtRead:
		return "r--"
	case ProtReadWrite:
		return "rw-"
	}
	return "???"
}

// Fault describes an invalid memory access.
type Fault struct {
	// Addr is the faulting virtual address.
	Addr uint64
	// Write distinguishes store faults from load faults.
	Write bool
	// Reason explains the fault.
	Reason string
}

// Error formats the fault as "<kind> fault at 0x<addr>: <reason>".
func (f *Fault) Error() string {
	kind := "load"
	if f.Write {
		kind = "store"
	}
	return fmt.Sprintf("memory fault: %s at %#x (%s heap): %s",
		kind, f.Addr, ir.HeapOf(f.Addr), f.Reason)
}

type page struct {
	data [PageSize]byte
}

type pageEntry struct {
	pg *page
	// cow marks the page as shared with another address space; the first
	// write duplicates it.
	cow bool
}

// allocBase is an immutable, shareable snapshot of allocator state: one node
// of a copy-on-write overlay chain. A clone (or a freeze before a clone)
// seals the mutable delta maps of a heapState into a new node, which both
// sides then read through without ever mutating — so post-clone allocator
// mutations cost O(1) in the number of live objects, not O(live) as a deep
// copy would.
type allocBase struct {
	// parent is the next-older snapshot; nil terminates the chain.
	parent *allocBase
	// free holds the free-list entries added at this level (newest at the
	// end, as the LIFO allocator appends them).
	free map[uint64][]uint64
	// used counts, per size class, how many entries this level had consumed
	// from the END of the parent chain's virtual free list at freeze time.
	used map[uint64]int
	// objects holds allocations made at this level; dead tombstones objects
	// of DEEPER levels freed at this level. Within one level objects wins
	// (a tombstoned address can be handed out again by a later Alloc).
	objects map[uint64]uint64
	dead    map[uint64]bool
	// depth is the chain length at this node, bounded by maxChainDepth via
	// amortized flattening.
	depth int
}

// maxChainDepth bounds overlay-chain walks; freezing past it flattens the
// state first (amortized across the mutations that grew the chain).
const maxChainDepth = 8

// entryFromEnd returns the (k+1)-th entry from the end of the chain's
// virtual free list for size class r, where the virtual list is the parent's
// list minus the entries this node had consumed, with this node's own frees
// stacked on top.
func (b *allocBase) entryFromEnd(r uint64, k int) (uint64, bool) {
	for b != nil {
		lst := b.free[r]
		if k < len(lst) {
			return lst[len(lst)-1-k], true
		}
		k += b.used[r] - len(lst)
		b = b.parent
	}
	return 0, false
}

// heapState is the allocator state of one logical heap: an optional
// immutable base chain plus private delta maps (allocated lazily, so a
// fresh post-clone state is a few words).
type heapState struct {
	// brk is the bump pointer (next unallocated address).
	brk uint64
	// base is the shared immutable snapshot chain; nil for a flat state.
	base *allocBase
	// free maps a rounded size class to the free list of addresses released
	// at this level (private, mutable).
	free map[uint64][]uint64
	// used counts per size class how many entries of base's virtual free
	// list this state has consumed (private, mutable).
	used map[uint64]int
	// objects tracks allocations made at this level; dead tombstones base
	// objects freed at this level.
	objects map[uint64]uint64
	dead    map[uint64]bool
	// liveCount is the number of live allocations across base and deltas.
	liveCount int
	// allocBytes totals bytes ever allocated from this heap.
	allocBytes uint64
}

func newHeapState(h ir.HeapKind) *heapState {
	return &heapState{
		// Skip the first page so address 0 (and small offsets) stay
		// unmapped: null-pointer dereferences must fault.
		brk: h.Base() + PageSize,
	}
}

// freeze seals this state's delta maps into a new immutable chain node, so
// a clone may share them. O(1): the maps move into the node unchanged and
// the state continues with empty deltas. A state with nothing new since the
// last freeze is reused as-is.
func (hs *heapState) freeze() {
	if hs.base != nil && len(hs.free) == 0 && len(hs.used) == 0 &&
		len(hs.objects) == 0 && len(hs.dead) == 0 {
		return
	}
	if hs.base != nil && hs.base.depth >= maxChainDepth {
		hs.flatten()
	}
	depth := 1
	if hs.base != nil {
		depth = hs.base.depth + 1
	}
	hs.base = &allocBase{parent: hs.base, free: hs.free, used: hs.used,
		objects: hs.objects, dead: hs.dead, depth: depth}
	hs.free, hs.used, hs.objects, hs.dead = nil, nil, nil, nil
}

// flatMaps materializes the fully resolved free and objects maps without
// mutating the state (oldest chain node first, each level's consumptions
// trimmed and frees appended; tombstones applied before same-level
// reallocations).
func (hs *heapState) flatMaps() (map[uint64][]uint64, map[uint64]uint64) {
	var chain []*allocBase
	for b := hs.base; b != nil; b = b.parent {
		chain = append(chain, b)
	}
	free := map[uint64][]uint64{}
	objects := map[uint64]uint64{}
	level := func(lfree map[uint64][]uint64, used map[uint64]int,
		lobjects map[uint64]uint64, dead map[uint64]bool) {
		for r, k := range used {
			free[r] = free[r][:len(free[r])-k]
		}
		for r, lst := range lfree {
			free[r] = append(free[r], lst...)
		}
		for a := range dead {
			delete(objects, a)
		}
		for a, s := range lobjects {
			objects[a] = s
		}
	}
	for i := len(chain) - 1; i >= 0; i-- {
		b := chain[i]
		level(b.free, b.used, b.objects, b.dead)
	}
	level(hs.free, hs.used, hs.objects, hs.dead)
	return free, objects
}

// flatten collapses the overlay chain into flat private maps.
func (hs *heapState) flatten() {
	hs.free, hs.objects = hs.flatMaps()
	hs.base, hs.used, hs.dead = nil, nil, nil
}

// clone duplicates the allocator state. The lazy default freezes the delta
// maps into an immutable shared base (O(1) regardless of how many objects
// are live — and, unlike the earlier map-sharing scheme, the first
// post-clone Alloc/Free is O(1) too, reading through the base instead of
// deep-copying it); eager materializes a full flat copy up front, preserving
// the old cost profile for the EagerClone baseline.
func (hs *heapState) clone(eager bool) *heapState {
	if eager {
		free, objects := hs.flatMaps()
		return &heapState{brk: hs.brk, free: free, objects: objects,
			liveCount: hs.liveCount, allocBytes: hs.allocBytes}
	}
	hs.freeze()
	return &heapState{brk: hs.brk, base: hs.base,
		liveCount: hs.liveCount, allocBytes: hs.allocBytes}
}

// recloneFrom makes hs a clone of src in place, reusing hs's private delta
// maps (cleared, capacity retained) instead of allocating fresh ones — the
// allocator half of AddressSpace.RecloneFrom. Reuse is safe because freeze
// moves any map a clone could share into the immutable base chain: a map
// still referenced from a heapState has never been visible to another
// space. The eager path mirrors clone's flat deep copy.
func (hs *heapState) recloneFrom(src *heapState, eager bool) {
	if eager {
		free, objects := src.flatMaps()
		*hs = heapState{brk: src.brk, free: free, objects: objects,
			liveCount: src.liveCount, allocBytes: src.allocBytes}
		return
	}
	src.freeze()
	hs.brk = src.brk
	hs.base = src.base
	clear(hs.free)
	clear(hs.used)
	clear(hs.objects)
	clear(hs.dead)
	hs.liveCount = src.liveCount
	hs.allocBytes = src.allocBytes
}

// objectSize resolves addr through the delta maps and the base chain,
// returning its rounded size if live.
func (hs *heapState) objectSize(addr uint64) (uint64, bool) {
	if sz, ok := hs.objects[addr]; ok {
		return sz, true
	}
	if hs.dead[addr] {
		return 0, false
	}
	for b := hs.base; b != nil; b = b.parent {
		if sz, ok := b.objects[addr]; ok {
			return sz, true
		}
		if b.dead[addr] {
			return 0, false
		}
	}
	return 0, false
}

// eachObject visits every live object once: newest level first, tombstoned
// and shadowed deeper entries skipped.
func (hs *heapState) eachObject(visit func(addr, size uint64)) {
	seen := map[uint64]bool{}
	level := func(objects map[uint64]uint64, dead map[uint64]bool) {
		for a, s := range objects {
			if !seen[a] {
				seen[a] = true
				visit(a, s)
			}
		}
		for a := range dead {
			seen[a] = true
		}
	}
	level(hs.objects, hs.dead)
	for b := hs.base; b != nil; b = b.parent {
		level(b.objects, b.dead)
	}
}

// Stats counts memory-system events, exposed for the paper's overhead
// accounting (Figure 8) and for tests.
type Stats struct {
	// PagesMapped counts demand-zero page instantiations.
	PagesMapped int64
	// PagesCopied counts copy-on-write duplications.
	PagesCopied int64
	// BytesRead totals load volume.
	BytesRead int64
	// BytesWritten totals store volume.
	BytesWritten int64
	// NodesCopied counts radix page-table nodes path-copied on first
	// mutation under a shared subtree (range-COW splits).
	NodesCopied int64
	// SummaryHits counts subtrees skipped outright by dirty-summary-guided
	// walks (DirtyPages/DirtyHeapPages).
	SummaryHits int64
}

// tlbEntry is one cached translation of the software TLB: page number to
// resolved page. A read entry proves the translation passed its protection
// check; a write entry additionally proves the page is privately owned
// (copy-on-write already resolved), so a hit may store directly.
type tlbEntry struct {
	pn uint64
	pg *page
}

// tlbSize is the number of direct-mapped TLB entries (a power of two).
const tlbSize = 64

// AddressSpace is one simulated process's view of memory: a multi-level
// radix page table plus per-heap allocator state and protections.
type AddressSpace struct {
	// root is the radix page table (see pagetable.go). Clones share
	// subtrees copy-on-write at range granularity: epoch identifies which
	// nodes this space owns, and every node it does not own is path-copied
	// before mutation. A node reachable from two or more spaces is never
	// mutated.
	root  *radixNode
	epoch uint64
	heaps [ir.NumHeaps]*heapState
	prot  [ir.NumHeaps]Prot

	// EagerClone selects the flat-table compatibility baseline: Clone
	// rebuilds the whole page table and deep-copies allocator state up
	// front (O(resident footprint)), and dirty walks scan every resident
	// entry instead of following summaries. Inherited by clones; used for
	// the scale experiment's before/after comparison.
	EagerClone bool

	// rtlb and wtlb are small direct-mapped software TLBs consulted before
	// the page map: rtlb caches protection-checked read translations, wtlb
	// caches write translations to privately owned pages. Both are flushed
	// on Clone, SetProt, ResetHeap and CopyHeapFrom; COW resolution updates
	// the affected entry in place.
	rtlb [tlbSize]tlbEntry
	wtlb [tlbSize]tlbEntry

	// Stats accumulates event counts; shared pointer across clones when
	// cloned with CloneSharingStats (updates then go through atomics so
	// concurrent worker clones may aggregate into one structure).
	Stats *Stats
	// statsAtomic selects atomic Stats updates; set once Stats may be
	// shared with concurrently executing clones.
	statsAtomic bool

	// Occ, when non-nil, mirrors this space's per-heap allocator totals in
	// atomic counters for live introspection (see occupancy.go). Clones do
	// NOT inherit it: worker spaces are scratch views, and the master's
	// occupancy is the program's authoritative heap state.
	Occ *HeapOccupancy

	// Trace receives page-layer events (COW duplication, TLB flushes,
	// protection faults); nil disables emission. Clones inherit the tracer.
	Trace *obs.Tracer
	// TraceWorker labels this space's events (-1 = master).
	TraceWorker int
	// TraceInv is the current region invocation (-1 = outside any region).
	TraceInv int64
}

// addStat bumps one Stats counter, atomically when the Stats structure may
// be shared with concurrently executing clones.
func (as *AddressSpace) addStat(p *int64, n int64) {
	if as.statsAtomic {
		atomic.AddInt64(p, n)
	} else {
		*p += n
	}
}

// flushTLB drops every cached translation; cause labels the trace event.
func (as *AddressSpace) flushTLB(cause string) {
	as.rtlb = [tlbSize]tlbEntry{}
	as.wtlb = [tlbSize]tlbEntry{}
	as.Trace.Instant(obs.Event{Kind: obs.KTLBFlush,
		Invocation: as.TraceInv, Worker: as.TraceWorker, Iter: -1, Cause: cause})
}

// NewAddressSpace returns an empty address space with every heap mapped
// read-write and empty.
func NewAddressSpace() *AddressSpace {
	epoch := nextEpoch()
	as := &AddressSpace{root: newInterior(epoch), epoch: epoch,
		Stats: &Stats{}, TraceWorker: -1, TraceInv: -1}
	for h := ir.HeapKind(0); h < ir.NumHeaps; h++ {
		as.heaps[h] = newHeapState(h)
		as.prot[h] = ProtReadWrite
	}
	return as
}

// Clone returns a copy-on-write duplicate of the address space, as fork
// would produce: both spaces share physical pages until either writes.
// Cloning is lazy at range granularity: parent and child share the radix
// table's subtrees, and both sides take fresh ownership epochs, which marks
// every existing node shared in O(1). The first mutation under a shared
// subtree path-copies only the nodes on the way down (marking the split
// leaf's pages copy-on-write), so spawning a read-mostly worker costs O(1),
// not O(mapped pages) or O(live allocations).
func (as *AddressSpace) Clone() *AddressSpace {
	as.epoch = nextEpoch()
	as.flushTLB("clone")
	c := &AddressSpace{root: as.root, epoch: nextEpoch(), Stats: &Stats{},
		EagerClone: as.EagerClone,
		Trace:      as.Trace, TraceWorker: as.TraceWorker, TraceInv: as.TraceInv}
	for h := ir.HeapKind(0); h < ir.NumHeaps; h++ {
		c.heaps[h] = as.heaps[h].clone(as.EagerClone)
		c.prot[h] = as.prot[h]
	}
	if as.EagerClone {
		c.eagerOwn()
	}
	return c
}

// CloneSharingStats is Clone, except the child accumulates into the
// parent's Stats structure instead of a fresh one. The speculative runtime
// spawns its workers this way so fork-style page-copy counts aggregate
// across the whole worker fleet (the paper's Figure 8 overhead accounting).
// Both spaces switch to atomic Stats updates, since clones typically run on
// concurrent worker goroutines.
func (as *AddressSpace) CloneSharingStats() *AddressSpace {
	as.statsAtomic = true
	c := as.Clone()
	c.Stats = as.Stats
	c.statsAtomic = true
	return c
}

// AtomicStats switches this space's Stats updates to atomic operations, so
// a concurrent reader (a live metrics scrape) may load the counters with
// sync/atomic while the space executes. CloneSharingStats implies it.
func (as *AddressSpace) AtomicStats() { as.statsAtomic = true }

// RecloneFrom re-targets as to be a fresh copy-on-write clone of parent —
// semantically identical to parent.CloneSharingStats(), except that no new
// AddressSpace, TLB arrays or heap-state slots are allocated: the receiver's
// existing structure (including the delta-map capacity its allocator grew on
// earlier runs) is reused in place. The region service's warmed worker pool
// spawns recycled workers this way, amortizing the per-spawn allocation
// churn across invocations. The receiver must not be aliased by any other
// execution (a pooled space between uses); any state it held is discarded.
func (as *AddressSpace) RecloneFrom(parent *AddressSpace) {
	parent.statsAtomic = true
	parent.epoch = nextEpoch()
	parent.flushTLB("clone")
	as.root = parent.root
	as.epoch = nextEpoch()
	for h := ir.HeapKind(0); h < ir.NumHeaps; h++ {
		as.heaps[h].recloneFrom(parent.heaps[h], parent.EagerClone)
		as.prot[h] = parent.prot[h]
	}
	as.EagerClone = parent.EagerClone
	as.Stats = parent.Stats
	as.statsAtomic = true
	as.Occ = nil
	as.Trace = parent.Trace
	as.TraceWorker = parent.TraceWorker
	as.TraceInv = parent.TraceInv
	as.flushTLB("reclone")
	if as.EagerClone {
		as.eagerOwn()
	}
}

// Release detaches as from whatever parent it was recloned from: the radix
// root is replaced by a fresh empty table and every heap returns to its
// empty post-construction state, so a pooled space does not pin a dead
// invocation's pages in memory while it waits for reuse. The structure
// itself (TLB arrays, heap-state slots, delta-map capacity) is retained for
// the next RecloneFrom.
func (as *AddressSpace) Release() {
	as.epoch = nextEpoch()
	as.root = newInterior(as.epoch)
	for h := ir.HeapKind(0); h < ir.NumHeaps; h++ {
		hs := as.heaps[h]
		hs.brk = h.Base() + PageSize
		hs.base = nil
		clear(hs.free)
		clear(hs.used)
		clear(hs.objects)
		clear(hs.dead)
		hs.liveCount, hs.allocBytes = 0, 0
		as.prot[h] = ProtReadWrite
	}
	as.Stats = &Stats{}
	as.statsAtomic = false
	as.Occ = nil
	as.Trace = nil
	as.flushTLB("release")
}

// SetProt sets the protection of an entire logical heap, the granularity at
// which Privateer manipulates page maps.
func (as *AddressSpace) SetProt(h ir.HeapKind, p Prot) {
	as.prot[h] = p
	as.flushTLB("setprot")
}

// ProtOf returns the protection of heap h.
func (as *AddressSpace) ProtOf(h ir.HeapKind) Prot { return as.prot[h] }

// pageFor returns the page containing addr, instantiating a demand-zero page
// if needed; forWrite resolves copy-on-write. Callers must have passed
// checkProt for the access: pageFor caches the translation in the TLB, and a
// TLB hit implies the protection check already succeeded.
func (as *AddressSpace) pageFor(addr uint64, forWrite bool) *page {
	key := addr >> PageShift
	if !forWrite {
		// Reads of already-mapped pages descend straight through shared
		// subtrees without copying anything.
		if e := as.peek(key); e != nil {
			as.rtlb[key&(tlbSize-1)] = tlbEntry{pn: key, pg: e.pg}
			return e.pg
		}
	}
	// Any mutation (instantiation or COW resolution) path-copies the shared
	// part of the branch first, then maintains the dirty summaries.
	var path [radixLevels]*radixNode
	leaf := as.ownPath(key, &path)
	slot := slotOf(key, radixLevels-1)
	e := &leaf.entries[slot]
	if e.pg == nil {
		e.pg = &page{}
		as.addStat(&as.Stats.PagesMapped, 1)
		as.markDirty(&path, slot)
	} else if forWrite && e.cow {
		dup := &page{data: e.pg.data}
		e.pg = dup
		e.cow = false
		as.addStat(&as.Stats.PagesCopied, 1)
		as.markDirty(&path, slot)
		as.Trace.Instant(obs.Event{Kind: obs.KCOWCopy,
			Invocation: as.TraceInv, Worker: as.TraceWorker, Iter: -1,
			A: int64(key << PageShift)})
	}
	idx := key & (tlbSize - 1)
	// COW resolution replaced the page this space reads at key, so the
	// read entry is refreshed alongside the write entry.
	as.rtlb[idx] = tlbEntry{pn: key, pg: e.pg}
	if forWrite {
		as.wtlb[idx] = tlbEntry{pn: key, pg: e.pg}
	}
	return e.pg
}

func (as *AddressSpace) checkProt(addr uint64, size uint64, write bool) error {
	h := ir.HeapOf(addr)
	p := as.prot[h]
	if p == ProtNone || (write && p != ProtReadWrite) {
		as.Trace.Instant(obs.Event{Kind: obs.KProtFault,
			Invocation: as.TraceInv, Worker: as.TraceWorker, Iter: -1,
			A: int64(addr), Cause: "protection " + p.String()})
		return &Fault{Addr: addr, Write: write, Reason: "protection " + p.String()}
	}
	// Guard the unmapped null page of the system heap.
	if addr < PageSize {
		return &Fault{Addr: addr, Write: write, Reason: "null page"}
	}
	return nil
}

// ReadBytes copies size bytes starting at addr into dst.
func (as *AddressSpace) ReadBytes(addr uint64, dst []byte) error {
	if err := as.checkProt(addr, uint64(len(dst)), false); err != nil {
		return err
	}
	as.addStat(&as.Stats.BytesRead, int64(len(dst)))
	for len(dst) > 0 {
		off := addr & (PageSize - 1)
		n := uint64(PageSize) - off
		if n > uint64(len(dst)) {
			n = uint64(len(dst))
		}
		pg := as.pageFor(addr, false)
		copy(dst[:n], pg.data[off:off+n])
		dst = dst[n:]
		addr += n
	}
	return nil
}

// WriteBytes copies src into memory starting at addr.
func (as *AddressSpace) WriteBytes(addr uint64, src []byte) error {
	if err := as.checkProt(addr, uint64(len(src)), true); err != nil {
		return err
	}
	as.addStat(&as.Stats.BytesWritten, int64(len(src)))
	for len(src) > 0 {
		off := addr & (PageSize - 1)
		n := uint64(PageSize) - off
		if n > uint64(len(src)) {
			n = uint64(len(src))
		}
		pg := as.pageFor(addr, true)
		copy(pg.data[off:off+n], src[:n])
		src = src[n:]
		addr += n
	}
	return nil
}

// loadLE reads a size-byte (1, 2, 4 or 8) little-endian word from b.
func loadLE(b []byte, size int64) uint64 {
	switch size {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	default:
		return binary.LittleEndian.Uint64(b)
	}
}

// storeLE writes the low size (1, 2, 4 or 8) bytes of val to b,
// little-endian.
func storeLE(b []byte, size int64, val uint64) {
	switch size {
	case 1:
		b[0] = byte(val)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(val))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(val))
	default:
		binary.LittleEndian.PutUint64(b, val)
	}
}

// pow2Size reports whether size is a standard access width (1, 2, 4, 8).
func pow2Size(size int64) bool {
	return size > 0 && size <= 8 && size&(size-1) == 0
}

// Read loads size (1, 2, 4 or 8) bytes at addr as a little-endian,
// zero-extended word.
func (as *AddressSpace) Read(addr uint64, size int64) (uint64, error) {
	off := addr & (PageSize - 1)
	if off+uint64(size) <= PageSize && pow2Size(size) {
		// Single-page aligned-width access: TLB hit skips the protection
		// check (proven at fill time) and the page-map lookup.
		pn := addr >> PageShift
		if e := &as.rtlb[pn&(tlbSize-1)]; e.pn == pn && e.pg != nil {
			as.addStat(&as.Stats.BytesRead, size)
			return loadLE(e.pg.data[off:], size), nil
		}
		if err := as.checkProt(addr, uint64(size), false); err != nil {
			return 0, err
		}
		as.addStat(&as.Stats.BytesRead, size)
		return loadLE(as.pageFor(addr, false).data[off:], size), nil
	}
	if err := as.checkProt(addr, uint64(size), false); err != nil {
		return 0, err
	}
	var buf [8]byte
	if err := as.ReadBytes(addr, buf[:size]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]) & sizeMask(size), nil
}

// Write stores the low size bytes of val at addr, little-endian.
func (as *AddressSpace) Write(addr uint64, size int64, val uint64) error {
	off := addr & (PageSize - 1)
	if off+uint64(size) <= PageSize && pow2Size(size) {
		// A write-TLB hit proves the page is privately owned and the heap
		// writable, so the store lands directly.
		pn := addr >> PageShift
		if e := &as.wtlb[pn&(tlbSize-1)]; e.pn == pn && e.pg != nil {
			as.addStat(&as.Stats.BytesWritten, size)
			storeLE(e.pg.data[off:], size, val)
			return nil
		}
		if err := as.checkProt(addr, uint64(size), true); err != nil {
			return err
		}
		as.addStat(&as.Stats.BytesWritten, size)
		storeLE(as.pageFor(addr, true).data[off:], size, val)
		return nil
	}
	if err := as.checkProt(addr, uint64(size), true); err != nil {
		return err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], val)
	return as.WriteBytes(addr, buf[:size])
}

// ReadF64 loads an IEEE binary64 at addr.
func (as *AddressSpace) ReadF64(addr uint64) (float64, error) {
	w, err := as.Read(addr, 8)
	return math.Float64frombits(w), err
}

// WriteF64 stores an IEEE binary64 at addr.
func (as *AddressSpace) WriteF64(addr uint64, v float64) error {
	return as.Write(addr, 8, math.Float64bits(v))
}

func sizeMask(size int64) uint64 {
	if size >= 8 {
		return ^uint64(0)
	}
	return (uint64(1) << (8 * size)) - 1
}

const allocAlign = 16

// Alloc carves size bytes out of logical heap h and returns the object's
// base address. Objects never span a heap boundary and inherit the heap's
// address tag.
func (as *AddressSpace) Alloc(h ir.HeapKind, size uint64) (uint64, error) {
	if size == 0 {
		size = 1
	}
	hs := as.heaps[h]
	rounded := (size + allocAlign - 1) &^ uint64(allocAlign-1)
	var addr uint64
	if lst := hs.free[rounded]; len(lst) > 0 {
		// Most recently freed first (LIFO), private frees before base ones.
		addr = lst[len(lst)-1]
		hs.free[rounded] = lst[:len(lst)-1]
	} else if a, ok := hs.base.entryFromEnd(rounded, hs.used[rounded]); ok {
		addr = a
		if hs.used == nil {
			hs.used = map[uint64]int{}
		}
		hs.used[rounded]++
	} else {
		addr = hs.brk
		hs.brk += rounded
		if ir.HeapOf(hs.brk) != h {
			return 0, fmt.Errorf("vm: heap %s exhausted (16 TB)", h)
		}
	}
	if hs.objects == nil {
		hs.objects = map[uint64]uint64{}
	}
	hs.objects[addr] = rounded
	hs.liveCount++
	hs.allocBytes += size
	if as.Occ != nil {
		as.Occ.alloc(h, size, rounded)
	}
	return addr, nil
}

// Free releases the object at addr, which must have been returned by Alloc
// on the same (or an ancestor) address space.
func (as *AddressSpace) Free(addr uint64) error {
	h := ir.HeapOf(addr)
	hs := as.heaps[h]
	rounded, live := hs.objectSize(addr)
	if !live {
		return fmt.Errorf("vm: free of non-allocated address %#x (%s heap)", addr, h)
	}
	if _, own := hs.objects[addr]; own {
		delete(hs.objects, addr)
	} else {
		if hs.dead == nil {
			hs.dead = map[uint64]bool{}
		}
		hs.dead[addr] = true
	}
	hs.liveCount--
	if hs.free == nil {
		hs.free = map[uint64][]uint64{}
	}
	hs.free[rounded] = append(hs.free[rounded], addr)
	if as.Occ != nil {
		as.Occ.free(h, rounded)
	}
	return nil
}

// ObjectSize returns the rounded size of the live object at addr, or 0.
func (as *AddressSpace) ObjectSize(addr uint64) uint64 {
	sz, _ := as.heaps[ir.HeapOf(addr)].objectSize(addr)
	return sz
}

// LiveObjects returns the number of live allocations in heap h, used to
// validate short-lived object lifetimes at iteration boundaries.
func (as *AddressSpace) LiveObjects(h ir.HeapKind) int { return as.heaps[h].liveCount }

// AllocatedBytes returns total bytes ever allocated from heap h.
func (as *AddressSpace) AllocatedBytes(h ir.HeapKind) uint64 { return as.heaps[h].allocBytes }

// Brk returns the bump pointer of heap h (its high-water mark).
func (as *AddressSpace) Brk(h ir.HeapKind) uint64 { return as.heaps[h].brk }

// clearHeapSubtrees detaches heap h's root subtrees (an O(16) range
// operation) and resynchronizes the root's dirty summary, which must keep
// upper-bounding the dirty pages reachable along owned paths.
func (as *AddressSpace) clearHeapSubtrees(h ir.HeapKind) {
	if as.root.epoch != as.epoch {
		as.root = as.root.copyAs(as.epoch)
		as.addStat(&as.Stats.NodesCopied, 1)
	}
	lo, hi := heapSlotRange(h)
	for s := lo; s < hi; s++ {
		as.root.kids[s] = nil
	}
	var dirty int64
	for _, kid := range as.root.kids {
		if kid != nil && kid.epoch == as.epoch {
			dirty += kid.dirty
		}
	}
	as.root.dirty = dirty
}

// ResetHeap discards all allocations and contents of heap h, returning it to
// its initial empty state (fresh pages on next touch).
func (as *AddressSpace) ResetHeap(h ir.HeapKind) {
	as.clearHeapSubtrees(h)
	as.heaps[h] = newHeapState(h)
	if as.Occ != nil {
		as.Occ.resync(h, as.heaps[h])
	}
	as.flushTLB("reset-heap")
}

// CopyHeapFrom replaces this space's view of heap h with src's: page
// contents are duplicated into entries marked copy-on-write (so they stay
// out of DirtyPages, exactly like a checkpoint-installed image), and the
// allocator state is cloned. This is the simulated equivalent of the
// recovery path's "several calls to mmap" that install a checkpoint's heap
// images.
func (as *AddressSpace) CopyHeapFrom(src *AddressSpace, h ir.HeapKind) {
	as.clearHeapSubtrees(h)
	var path [radixLevels]*radixNode
	src.HeapPages(h, func(base uint64, data []byte) {
		pn := base >> PageShift
		leaf := as.ownPath(pn, &path)
		e := &leaf.entries[slotOf(pn, radixLevels-1)]
		dup := &page{}
		copy(dup.data[:], data)
		*e = pageEntry{pg: dup, cow: true}
	})
	as.heaps[h] = src.heaps[h].clone(as.EagerClone)
	if as.Occ != nil {
		as.Occ.resync(h, as.heaps[h])
	}
	as.flushTLB("copy-heap")
	src.flushTLB("copy-heap")
}

// DirtyPages calls visit for every page this address space owns privately —
// pages written since the last Clone (COW-resolved) or newly instantiated.
// The walk is summary-guided: shared or untouched subtrees are skipped
// without descending (O(touched pages), not O(resident footprint)). The
// data slice aliases live memory and must not be retained.
func (as *AddressSpace) DirtyPages(visit func(base uint64, data []byte)) {
	if as.EagerClone {
		as.root.walkNotCOW(0, func(base uint64, e *pageEntry) {
			visit(base, e.pg.data[:])
		})
		return
	}
	as.walkDirty(as.root, 0, func(base uint64, e *pageEntry) {
		visit(base, e.pg.data[:])
	})
}

// DirtyHeapPages is DirtyPages restricted to heap h: a summary-guided walk
// over the heap's root-slot range that skips shared and untouched subtrees
// outright. The data slice aliases live memory and must not be retained.
func (as *AddressSpace) DirtyHeapPages(h ir.HeapKind, visit func(base uint64, data []byte)) {
	if as.EagerClone {
		as.heapWalkAll(h, func(base uint64, e *pageEntry) {
			if !e.cow {
				visit(base, e.pg.data[:])
			}
		})
		return
	}
	if as.root.epoch != as.epoch || as.root.dirty == 0 {
		as.addStat(&as.Stats.SummaryHits, 1)
		return
	}
	lo, hi := heapSlotRange(h)
	for s := lo; s < hi; s++ {
		if kid := as.root.kids[s]; kid != nil {
			as.walkDirty(kid, s, func(base uint64, e *pageEntry) {
				visit(base, e.pg.data[:])
			})
		}
	}
}

// WritablePage returns the full, privately owned page containing addr,
// instantiating it and resolving copy-on-write as a store would. The shadow
// layer uses it to batch whole-page metadata updates (span privacy marks,
// checkpoint resets) into one translation instead of one per byte. The
// slice aliases live memory and must not be retained across Clone/SetProt.
func (as *AddressSpace) WritablePage(addr uint64) ([]byte, error) {
	// A write-TLB hit proves the page is privately owned and writable.
	pn := addr >> PageShift
	if e := &as.wtlb[pn&(tlbSize-1)]; e.pn == pn && e.pg != nil {
		return e.pg.data[:], nil
	}
	if err := as.checkProt(addr, 1, true); err != nil {
		return nil, err
	}
	return as.pageFor(addr, true).data[:], nil
}

// PageData returns the contents of the page containing addr without
// instantiating it; ok is false for never-touched pages (all zero).
func (as *AddressSpace) PageData(addr uint64) ([]byte, bool) {
	e := as.peek(addr >> PageShift)
	if e == nil {
		return nil, false
	}
	return e.pg.data[:], true
}

// heapWalkAll visits every instantiated page entry of heap h, regardless of
// ownership or dirty state.
func (as *AddressSpace) heapWalkAll(h ir.HeapKind, visit func(base uint64, e *pageEntry)) {
	lo, hi := heapSlotRange(h)
	for s := lo; s < hi; s++ {
		if kid := as.root.kids[s]; kid != nil {
			kid.walkAll(s, visit)
		}
	}
}

// HeapPages calls visit for every instantiated page of heap h with the
// page's base address and contents. The contents slice aliases live memory
// and must not be retained.
func (as *AddressSpace) HeapPages(h ir.HeapKind, visit func(base uint64, data []byte)) {
	as.heapWalkAll(h, func(base uint64, e *pageEntry) {
		visit(base, e.pg.data[:])
	})
}
