package vm

import (
	"sync/atomic"

	"privateer/internal/ir"
)

// The multi-level (radix) page table.
//
// Page numbers are 35 bits (addresses stay below 2^47: three tag bits at
// TagShift=44 over a 44-bit offset, minus the 12-bit page offset), split
// into five 7-bit radix levels. The top level therefore indexes page-number
// bits [28,35), of which the high three are the heap tag — every logical
// heap owns a contiguous run of 16 top-level slots, so heap-granular walks
// and resets are range operations on the root.
//
// Sharing is range-COW by epoch instead of per-entry flags copied up front:
// every node records the epoch of the address space that created it, and a
// node is *owned* by a space iff node.epoch == as.epoch. Clone gives both
// sides fresh epochs, which marks every existing subtree shared in O(1);
// the first mutation under a shared subtree path-copies just the five nodes
// on the way down (the split), marking the copied leaf's present entries
// copy-on-write. A node reachable from two or more spaces is never mutated
// — the invariant the pipelined committer's overlapped installs rely on
// (see TestConcurrentCloneIsolation).
//
// Dirty tracking is summarized per subtree: the store path sets a per-leaf
// dirty bitmap bit and bumps a touched-page counter on every node along the
// owned path. DirtyPages and DirtyHeapPages walk only owned nodes whose
// counter is non-zero, skipping untouched subtrees outright (each skip of a
// populated subtree counts as a summary hit), so collecting a worker's
// speculative state is O(touched pages), not O(resident footprint).

const (
	// radixBits is the index width of one radix level.
	radixBits = 7
	// radixFanout is the child count of one radix node.
	radixFanout = 1 << radixBits
	// radixLevels is the tree depth: radixLevels*radixBits covers the full
	// 35-bit page-number space.
	radixLevels = 5
)

// epochCounter issues globally unique ownership epochs; every Clone hands a
// fresh epoch to both sides, so no two spaces ever own the same epoch.
var epochCounter uint64

func nextEpoch() uint64 { return atomic.AddUint64(&epochCounter, 1) }

// slotOf extracts the radix index of page number pn at tree level lvl
// (0 = root).
func slotOf(pn uint64, lvl int) uint64 {
	return (pn >> uint((radixLevels-1-lvl)*radixBits)) & (radixFanout - 1)
}

// radixNode is one page-table node. Interior nodes use kids; leaves use
// entries plus the dirty bitmap. epoch identifies the owning space (see the
// package comment above), and dirty counts pages dirtied under this node
// along owned paths since the owner's last Clone.
type radixNode struct {
	epoch uint64
	dirty int64
	kids  []*radixNode // interior level: radixFanout children
	// entries holds the leaf level's page slots; entries[i].pg == nil means
	// the page was never instantiated.
	entries []pageEntry
	// dirtyBits marks leaf slots dirtied since the owner's last Clone.
	dirtyBits [radixFanout / 64]uint64
}

func newInterior(epoch uint64) *radixNode {
	return &radixNode{epoch: epoch, kids: make([]*radixNode, radixFanout)}
}

func newLeaf(epoch uint64) *radixNode {
	return &radixNode{epoch: epoch, entries: make([]pageEntry, radixFanout)}
}

// copyAs returns a private duplicate of nd owned by epoch — the split half
// of range-COW. A copied leaf marks every present entry copy-on-write and
// forgets dirty state: the copy belongs to a new ownership generation that
// has not written anything yet.
func (nd *radixNode) copyAs(epoch uint64) *radixNode {
	if nd.kids != nil {
		c := &radixNode{epoch: epoch, kids: make([]*radixNode, radixFanout)}
		copy(c.kids, nd.kids)
		return c
	}
	c := &radixNode{epoch: epoch, entries: make([]pageEntry, radixFanout)}
	copy(c.entries, nd.entries)
	for i := range c.entries {
		if c.entries[i].pg != nil {
			c.entries[i].cow = true
		}
	}
	return c
}

// leafDirty reports whether leaf slot i is marked dirty.
func (nd *radixNode) leafDirty(i uint64) bool {
	return nd.dirtyBits[i>>6]&(1<<(i&63)) != 0
}

// peek descends to pn's page entry without copying or instantiating
// anything, reading straight through shared subtrees. It returns nil if the
// page was never instantiated.
func (as *AddressSpace) peek(pn uint64) *pageEntry {
	nd := as.root
	for lvl := 0; lvl < radixLevels-1; lvl++ {
		nd = nd.kids[slotOf(pn, lvl)]
		if nd == nil {
			return nil
		}
	}
	e := &nd.entries[slotOf(pn, radixLevels-1)]
	if e.pg == nil {
		return nil
	}
	return e
}

// ownPath descends to pn's leaf, path-copying every shared node on the way
// (the range-COW split) so the caller may mutate the leaf. path receives
// the five owned nodes root-to-leaf for dirty-summary maintenance.
func (as *AddressSpace) ownPath(pn uint64, path *[radixLevels]*radixNode) *radixNode {
	if as.root.epoch != as.epoch {
		as.root = as.root.copyAs(as.epoch)
		as.addStat(&as.Stats.NodesCopied, 1)
	}
	nd := as.root
	path[0] = nd
	for lvl := 0; lvl < radixLevels-1; lvl++ {
		slot := slotOf(pn, lvl)
		kid := nd.kids[slot]
		switch {
		case kid == nil:
			if lvl == radixLevels-2 {
				kid = newLeaf(as.epoch)
			} else {
				kid = newInterior(as.epoch)
			}
			nd.kids[slot] = kid
		case kid.epoch != as.epoch:
			kid = kid.copyAs(as.epoch)
			as.addStat(&as.Stats.NodesCopied, 1)
			nd.kids[slot] = kid
		}
		nd = kid
		path[lvl+1] = nd
	}
	return nd
}

// markDirty records leaf slot as dirtied, bumping the touched-page counter
// of every node along the owned path. Idempotent per (leaf, slot).
func (as *AddressSpace) markDirty(path *[radixLevels]*radixNode, slot uint64) {
	leaf := path[radixLevels-1]
	if leaf.leafDirty(slot) {
		return
	}
	leaf.dirtyBits[slot>>6] |= 1 << (slot & 63)
	for _, nd := range path {
		nd.dirty++
	}
}

// heapTagBits is the width of the heap tag (ir.TagMask), which forms the
// top bits of the root index.
const heapTagBits = 3

// heapSlotRange returns the root-slot range [lo, hi) covering heap h. The
// heap tag occupies the top three bits of the root index, so each heap is
// exactly 16 contiguous root slots.
func heapSlotRange(h ir.HeapKind) (uint64, uint64) {
	lo := h.Tag() << (radixBits - heapTagBits)
	return lo, lo + 1<<(radixBits-heapTagBits)
}

// walkAll visits every instantiated page under nd (pn is the page-number
// prefix accumulated so far), regardless of ownership or dirty state.
func (nd *radixNode) walkAll(pn uint64, visit func(base uint64, e *pageEntry)) {
	if nd.kids != nil {
		for i, kid := range nd.kids {
			if kid != nil {
				kid.walkAll(pn<<radixBits|uint64(i), visit)
			}
		}
		return
	}
	for i := range nd.entries {
		if e := &nd.entries[i]; e.pg != nil {
			visit((pn<<radixBits|uint64(i))<<PageShift, e)
		}
	}
}

// walkDirty visits every page dirtied since the space's last Clone,
// guided by the dirty summaries: subtrees that are shared (stale epoch) or
// have a zero touched-page count are skipped, and each skip of a populated
// subtree is counted as a summary hit.
func (as *AddressSpace) walkDirty(nd *radixNode, pn uint64, visit func(base uint64, e *pageEntry)) {
	if nd.epoch != as.epoch || nd.dirty == 0 {
		as.addStat(&as.Stats.SummaryHits, 1)
		return
	}
	if nd.kids != nil {
		for i, kid := range nd.kids {
			if kid != nil {
				as.walkDirty(kid, pn<<radixBits|uint64(i), visit)
			}
		}
		return
	}
	for i := range nd.entries {
		if nd.leafDirty(uint64(i)) {
			visit((pn<<radixBits|uint64(i))<<PageShift, &nd.entries[i])
		}
	}
}

// walkNotCOW visits every page entry under nd not marked copy-on-write —
// the flat-table dirty scan the EagerClone compatibility mode preserves as
// the refactor's before/after baseline.
func (nd *radixNode) walkNotCOW(pn uint64, visit func(base uint64, e *pageEntry)) {
	nd.walkAll(pn, func(base uint64, e *pageEntry) {
		if !e.cow {
			visit(base, e)
		}
	})
}

// eagerOwn rebuilds the whole reachable table as privately owned nodes with
// every present entry marked copy-on-write — the cost profile of the old
// flat page table, whose clone paid O(resident pages) up front. Used by the
// EagerClone baseline mode. The rebuild's node copies are deliberately not
// counted as NodesCopied: that counter measures lazy range-COW splits.
func (as *AddressSpace) eagerOwn() {
	var rebuild func(nd *radixNode) *radixNode
	rebuild = func(nd *radixNode) *radixNode {
		c := nd.copyAs(as.epoch)
		if c.kids != nil {
			for i, kid := range c.kids {
				if kid != nil {
					c.kids[i] = rebuild(kid)
				}
			}
		}
		return c
	}
	as.root = rebuild(as.root)
}

// PageTableStats describes one address space's radix page-table occupancy
// and dirty-summary state, for introspection (privateer-dump -pagetable)
// and the scale experiment. Collected by a full walk; do not call it
// concurrently with mutations of the same space.
type PageTableStats struct {
	// Levels is the radix-tree depth.
	Levels int `json:"levels"`
	// Fanout is the per-node branching factor.
	Fanout int `json:"fanout"`
	// Nodes counts reachable radix nodes.
	Nodes int64 `json:"nodes"`
	// OwnedNodes counts the subset of nodes this space owns (created since
	// its last Clone).
	OwnedNodes int64 `json:"owned_nodes"`
	// ResidentPages counts instantiated pages.
	ResidentPages int64 `json:"resident_pages"`
	// DirtyPages counts pages dirtied since the last Clone (owned paths
	// only).
	DirtyPages int64 `json:"dirty_pages"`
	// HeapResident breaks ResidentPages down per logical heap, in tag order.
	HeapResident [ir.NumHeaps]int64 `json:"heap_resident"`
}

// PageTable walks the radix table and returns its occupancy statistics.
func (as *AddressSpace) PageTable() PageTableStats {
	st := PageTableStats{Levels: radixLevels, Fanout: radixFanout}
	var walk func(nd *radixNode)
	walk = func(nd *radixNode) {
		st.Nodes++
		if nd.epoch == as.epoch {
			st.OwnedNodes++
			if nd.entries != nil {
				st.DirtyPages += nd.dirty
			}
		}
		for _, kid := range nd.kids {
			if kid != nil {
				walk(kid)
			}
		}
	}
	walk(as.root)
	for h := ir.HeapKind(0); h < ir.NumHeaps; h++ {
		lo, hi := heapSlotRange(h)
		for s := lo; s < hi; s++ {
			if kid := as.root.kids[s]; kid != nil {
				kid.walkAll(s, func(uint64, *pageEntry) { st.HeapResident[h]++ })
			}
		}
	}
	for h := range st.HeapResident {
		st.ResidentPages += st.HeapResident[h]
	}
	return st
}
