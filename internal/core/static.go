package core

import (
	"fmt"

	"privateer/internal/analysis"
	"privateer/internal/deps"
	"privateer/internal/doall"
	"privateer/internal/interp"
	"privateer/internal/ir"
	"privateer/internal/profiling"
	"privateer/internal/vm"
)

// StaticParallelized is the DOALL-only compilation result: regions proved
// independent by static analysis alone, with no privatization, checks or
// checkpoints (Figure 7's baseline).
type StaticParallelized struct {
	// Mod is the outlined module.
	Mod *ir.Module
	// Regions are the outlined loops.
	Regions []*doall.Region
	// Reports explains each hot loop's fate.
	Reports []LoopReport
}

// ParallelizeStatic runs the non-speculative baseline pipeline: profile for
// hotness only (a real compiler would use static heuristics; hotness makes
// the comparison apples-to-apples), judge every loop with conservative
// static analysis, and outline the provable ones.
func ParallelizeStatic(mod *ir.Module, opts Options) (*StaticParallelized, error) {
	if err := ir.Verify(mod); err != nil {
		return nil, fmt.Errorf("core: input module invalid: %w", err)
	}
	prof, err := profiling.Run(mod, opts.TrainArgs...)
	if err != nil {
		return nil, fmt.Errorf("core: profiling failed: %w", err)
	}
	pt := analysis.ComputePointsTo(mod)
	minSteps := opts.MinLoopSteps
	if minSteps == 0 {
		minSteps = prof.Steps / 100
		if minSteps < 100 {
			minSteps = 100
		}
	}
	out := &StaticParallelized{Mod: mod}
	var selected []*ir.Loop
	for _, li := range prof.HotLoops() {
		l := li.Loop
		rep := LoopReport{Loop: l.String(), Steps: li.Steps}
		switch {
		case li.Steps < minSteps:
			rep.Reason = "cold"
		case conflictsWithSelected(l, selected):
			rep.Reason = "may be simultaneously active with a selected loop"
		default:
			blockers := deps.StaticBlockers(l, pt)
			if len(blockers) > 0 {
				rep.Reason = blockers[0].String()
				break
			}
			iv := ir.FindInductionVar(l)
			if iv == nil {
				rep.Reason = "no canonical induction variable"
				break
			}
			region, err := doall.Outline(mod, l, iv)
			if err != nil {
				rep.Reason = err.Error()
				break
			}
			rep.Selected = true
			selected = append(selected, l)
			out.Regions = append(out.Regions, region)
		}
		out.Reports = append(out.Reports, rep)
	}
	if err := ir.Verify(mod); err != nil {
		return nil, fmt.Errorf("core: outlined module invalid: %w", err)
	}
	return out, nil
}

// StaticRun is the outcome of one DOALL-only execution.
type StaticRun struct {
	// Baseline is the scheduler, with its stats.
	Baseline *doall.Baseline
	// Ret is the program result.
	Ret uint64
	// Output is the printed output.
	Output string
	// MasterSteps counts instructions interpreted outside parallel regions.
	MasterSteps int64
}

// SimTime returns the run's simulated execution time (see specrt/sim.go
// for the model).
func (r *StaticRun) SimTime() int64 { return r.MasterSteps + r.Baseline.Stats.SimRegionTime }

// RunStatic executes a DOALL-only program with the given worker count.
func RunStatic(p *StaticParallelized, workers int, args ...uint64) (*StaticRun, error) {
	it := interp.New(p.Mod, vm.NewAddressSpace())
	bl := doall.NewBaseline(workers, p.Regions...)
	bl.Attach(it)
	ret, err := it.Run(args...)
	if err != nil {
		return nil, err
	}
	return &StaticRun{Baseline: bl, Ret: ret, Output: it.Out.String(), MasterSteps: it.Steps}, nil
}
