package core

import (
	"strings"
	"testing"

	"privateer/internal/ir"
	"privateer/internal/specrt"
)

// buildMini builds the miniature dijkstra-like program: a reused table,
// a reused queue pointer (read-before-write, handled by value prediction),
// short-lived nodes, a read-only input, a sum reduction and deferred
// output. n controls the trip count.
func buildMini(n int64) *ir.Module {
	m := ir.NewModule("mini")
	table := m.NewGlobal("table", n*8)
	input := m.NewGlobal("input", n*8)
	for i := int64(0); i < n; i++ {
		input.Init = append(input.Init, byte(i*7+3), 0, 0, 0, 0, 0, 0, 0)
	}
	head := m.NewGlobal("head", 8)
	sum := m.NewGlobal("sum", 8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("src", b.I(0), b.I(n), func(sv *ir.Instr) {
		// Initialize the whole table each iteration (privatizable).
		b.For("i", b.I(0), b.I(n), func(iv *ir.Instr) {
			slot := b.Add(b.Global(table), b.Mul(b.Ld(iv), b.I(8)))
			b.Store(b.Add(b.Ld(sv), b.Ld(iv)), slot, 8)
		})
		// Enqueue one node; node->next = head reads last iteration's NULL.
		node := b.Malloc("node", b.I(16))
		b.Store(b.Ld(sv), node, 8)
		b.Store(b.LoadPtr(b.Global(head)), b.Add(node, b.I(8)), 8)
		b.Store(node, b.Global(head), 8)
		// Drain the queue.
		b.While(func() ir.Value { return b.Ne(b.LoadPtr(b.Global(head)), b.P(0)) }, func() {
			cur := b.LoadPtr(b.Global(head))
			v := b.Load(cur, 8)
			idx := b.SRem(v, b.I(n))
			src := b.Add(b.Global(input), b.Mul(idx, b.I(8)))
			dst := b.Add(b.Global(table), b.Mul(idx, b.I(8)))
			b.Store(b.Load(src, 8), dst, 8)
			b.Store(b.LoadPtr(b.Add(cur, b.I(8))), b.Global(head), 8)
			b.Free(cur)
		})
		// Reduce: sum += table[src].
		sumAddr := b.Global(sum)
		cell := b.Load(b.Add(b.Global(table), b.Mul(b.Ld(sv), b.I(8))), 8)
		b.Store(b.Add(b.Load(sumAddr, 8), cell), sumAddr, 8)
		// Deferred output.
		b.Print("iter %d cell %d\n", b.Ld(sv), cell)
	})
	b.Ret(b.Load(b.Global(sum), 8))
	for _, fn := range m.SortedFuncs() {
		ir.PromoteAllocas(fn)
	}
	return m
}

func TestParallelizeSelectsOuterLoop(t *testing.T) {
	m := buildMini(24)
	par, err := Parallelize(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Regions) != 1 {
		t.Fatalf("selected %d regions, want 1\n%s", len(par.Regions), par.Summary())
	}
	ri := par.Regions[0]
	if !ri.Plan.NeedsValuePrediction {
		t.Error("value prediction not planned")
	}
	if !ri.Plan.NeedsIODeferral {
		t.Error("I/O deferral not planned")
	}
	s := par.Summary()
	if !strings.Contains(s, "selected") {
		t.Errorf("summary missing selection:\n%s", s)
	}
}

// runBoth runs the original sequentially and the parallelized version with
// the given config, returning (seqVal, seqOut, parVal, parOut, rt).
func runBoth(t *testing.T, n int64, cfg specrt.Config) (uint64, string, uint64, string, *specrt.RT) {
	t.Helper()
	seqVal, seqOut, err := RunSequential(buildMini(n))
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	m := buildMini(n)
	par, err := Parallelize(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Regions) == 0 {
		t.Fatalf("nothing parallelized:\n%s", par.Summary())
	}
	rt, parVal, err := Run(par, cfg)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	return seqVal, seqOut, parVal, rt.Output(), rt
}

func TestParallelMatchesSequential(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		seqVal, seqOut, parVal, parOut, rt := runBoth(t, 40, specrt.Config{Workers: workers})
		if parVal != seqVal {
			t.Errorf("workers=%d: result %d, want %d", workers, parVal, seqVal)
		}
		if parOut != seqOut {
			t.Errorf("workers=%d: output mismatch\n got: %q\nwant: %q", workers, parOut, seqOut)
		}
		if rt.Stats.Invocations != 1 {
			t.Errorf("workers=%d: invocations=%d", workers, rt.Stats.Invocations)
		}
		if rt.Stats.Misspecs != 0 {
			t.Errorf("workers=%d: unexpected misspeculations: %d", workers, rt.Stats.Misspecs)
		}
		if workers > 1 && rt.Stats.Checkpoints == 0 {
			t.Errorf("workers=%d: no checkpoints constructed", workers)
		}
	}
}

func TestDeferredOutputOrdered(t *testing.T) {
	_, seqOut, _, parOut, rt := runBoth(t, 30, specrt.Config{Workers: 4, CheckpointPeriod: 7})
	if parOut != seqOut {
		t.Errorf("deferred output out of order:\n got: %q\nwant: %q", parOut, seqOut)
	}
	if rt.Stats.DeferredIO == 0 {
		t.Error("no output was deferred")
	}
}

func TestMisspecInjectionRecovers(t *testing.T) {
	seqVal, seqOut, _, _, _ := runBoth(t, 40, specrt.Config{Workers: 2})
	m := buildMini(40)
	par, err := Parallelize(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt, parVal, err := Run(par, specrt.Config{
		Workers: 4, MisspecRate: 0.10, Seed: 42, CheckpointPeriod: 5,
	})
	if err != nil {
		t.Fatalf("run with injection: %v", err)
	}
	if rt.Stats.Misspecs == 0 || rt.Stats.Recoveries == 0 {
		t.Fatalf("injection did not trigger recovery: %+v", rt.Stats)
	}
	if parVal != seqVal {
		t.Errorf("result after recovery %d, want %d", parVal, seqVal)
	}
	if rt.Output() != seqOut {
		t.Errorf("output after recovery:\n got: %q\nwant: %q", rt.Output(), seqOut)
	}
}

func TestGenuinePrivacyViolationDetectedAndRecovered(t *testing.T) {
	// Train input behaves privately; the loop carries a flow dependence
	// only when an iteration index crosses half the trip count — the
	// profile (which sees the same input here) WOULD catch it, so instead
	// we use a data pattern that reads a stale value only rarely and
	// drive the profile with a small trip count where the read never
	// fires, then run with a larger count where it does.
	build := func(n int64) *ir.Module {
		m := ir.NewModule("viol")
		buf := m.NewGlobal("buf", 8)
		out := m.NewGlobal("out", 8)
		f := m.NewFunc("main", ir.I64)
		f.NewParam("n", ir.I64)
		b := ir.NewBuilder(f)
		nv := f.Params[0]
		b.For("i", b.I(0), nv, func(iv *ir.Instr) {
			// Iterations < 20 write buf then read it (private).
			// Iteration 20+ reads buf FIRST (carried flow from i-1).
			b.If(b.SLt(b.Ld(iv), b.I(20)), func() {
				b.Store(b.Ld(iv), b.Global(buf), 8)
			}, nil)
			v := b.Load(b.Global(buf), 8)
			b.Store(b.Add(b.Load(b.Global(out), 8), v), b.Global(out), 8)
		})
		b.Ret(b.Load(b.Global(out), 8))
		_ = n
		ir.PromoteAllocas(f)
		return m
	}
	// Sequential reference on the big input.
	seqVal, _, err := RunSequential(build(32), 32)
	if err != nil {
		t.Fatal(err)
	}
	m := build(32)
	par, err := Parallelize(m, Options{TrainArgs: []uint64{16}})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Regions) == 0 {
		t.Skipf("loop not selected (profile saw the dependence):\n%s", par.Summary())
	}
	rt, got, err := Run(par, specrt.Config{Workers: 4, CheckpointPeriod: 4}, 32)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rt.Stats.Misspecs == 0 {
		t.Error("privacy violation was not detected")
	}
	if got != seqVal {
		t.Errorf("result %d, want %d (recovery must restore correctness)", got, seqVal)
	}
}

func TestReductionAcrossWorkers(t *testing.T) {
	// Pure reduction program: sum of f(i) and min of g(i).
	build := func() *ir.Module {
		m := ir.NewModule("redux")
		sum := m.NewGlobal("sum", 8)
		best := m.NewGlobal("best", 8)
		best.Init = []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
		f := m.NewFunc("main", ir.I64)
		b := ir.NewBuilder(f)
		b.For("i", b.I(0), b.I(100), func(iv *ir.Instr) {
			v := b.Mul(b.Ld(iv), b.Ld(iv))
			sumAddr := b.Global(sum)
			b.Store(b.Add(b.Load(sumAddr, 8), v), sumAddr, 8)
			d := b.Mul(b.Sub(b.I(37), b.Ld(iv)), b.Sub(b.I(37), b.Ld(iv)))
			bestAddr := b.Global(best)
			cur := b.Load(bestAddr, 8)
			b.Store(b.Select(b.SLt(d, cur), d, cur), bestAddr, 8)
		})
		b.Ret(b.Add(b.Load(b.Global(sum), 8), b.Load(b.Global(best), 8)))
		ir.PromoteAllocas(f)
		return m
	}
	seqVal, _, err := RunSequential(build())
	if err != nil {
		t.Fatal(err)
	}
	m := build()
	par, err := Parallelize(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Regions) == 0 {
		t.Fatalf("reduction loop not selected:\n%s", par.Summary())
	}
	for _, workers := range []int{2, 5} {
		rt, got, err := Run(par, specrt.Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got != seqVal {
			t.Errorf("workers=%d: %d, want %d (stats %+v)", workers, got, seqVal, rt.Stats)
		}
	}
}

func TestParallelizeRejectsRecurrence(t *testing.T) {
	m := ir.NewModule("recur")
	tbl := m.NewGlobal("tbl", 65*8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(1), b.I(64), func(iv *ir.Instr) {
		prev := b.Add(b.Global(tbl), b.Mul(b.Sub(b.Ld(iv), b.I(1)), b.I(8)))
		cur := b.Add(b.Global(tbl), b.Mul(b.Ld(iv), b.I(8)))
		b.Store(b.Add(b.Load(prev, 8), b.I(1)), cur, 8)
	})
	b.Ret(b.Load(b.Add(b.Global(tbl), b.I(63*8)), 8))
	ir.PromoteAllocas(f)
	par, err := Parallelize(m, Options{MinLoopSteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Regions) != 0 {
		t.Errorf("recurrence was parallelized:\n%s", par.Summary())
	}
	// The program must still run correctly after (non-)transformation.
	got, _, err := RunSequential(m)
	if err != nil {
		t.Fatal(err)
	}
	if got != 63 {
		t.Errorf("result %d, want 63", got)
	}
}
