package core

import (
	"testing"

	"privateer/internal/ir"
	"privateer/internal/profiling"
	"privateer/internal/specrt"
)

// buildPrivTable builds a program whose hot loop fully overwrites a table
// every iteration (statically privatizable via covered-write), reads an
// initialized input array (statically read-only) and accumulates into a
// sum (reduction). It is the canonical shape the separation prover is
// meant to discharge end-to-end.
func buildPrivTable(n int64) *ir.Module {
	m := ir.NewModule("sepx")
	table := m.NewGlobal("table", n*8)
	input := m.NewGlobal("input", n*8)
	for i := int64(0); i < n; i++ {
		input.Init = append(input.Init, byte(i*5+1), 0, 0, 0, 0, 0, 0, 0)
	}
	sum := m.NewGlobal("sum", 8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("src", b.I(0), b.I(n), func(sv *ir.Instr) {
		b.For("i", b.I(0), b.I(n), func(iv *ir.Instr) {
			src := b.Add(b.Global(input), b.Mul(b.Ld(iv), b.I(8)))
			dst := b.Add(b.Global(table), b.Mul(b.Ld(iv), b.I(8)))
			b.Store(b.Add(b.Load(src, 8), b.Ld(sv)), dst, 8)
		})
		cell := b.Load(b.Add(b.Global(table), b.Mul(b.Ld(sv), b.I(8))), 8)
		sumAddr := b.Global(sum)
		b.Store(b.Add(b.Load(sumAddr, 8), cell), sumAddr, 8)
	})
	b.Ret(b.Load(b.Global(sum), 8))
	ir.PromoteAllocas(f)
	return m
}

func TestStaticSepProvenEndToEnd(t *testing.T) {
	const n = 40
	seqVal, _, err := RunSequential(buildPrivTable(n))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Parallelize(buildPrivTable(n), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Regions) != 1 {
		t.Fatalf("selected %d regions, want 1\n%s", len(par.Regions), par.Summary())
	}
	ri := par.Regions[0]
	sep := ri.Assign.Sep
	if sep == nil {
		t.Fatal("no separation proofs attached to the region")
	}
	table := profiling.Object{Global: par.Mod.Globals["table"]}
	input := profiling.Object{Global: par.Mod.Globals["input"]}
	if !sep.StaticallyPrivatized(table) {
		t.Errorf("table should be statically privatized:\n%s", sep.Summary())
	}
	if !sep.ProvenFor(input, ir.HeapReadOnly) {
		t.Errorf("input should be proven read-only:\n%s", sep.Summary())
	}
	if ri.TStats.StaticProven == 0 {
		t.Error("no separation checks were statically discharged")
	}
	if ri.TStats.StaticPrivMarksDropped == 0 {
		t.Error("no privacy marks were dropped for the proven table")
	}

	rt, got, err := Run(par, specrt.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != seqVal {
		t.Errorf("result %d, want %d", got, seqVal)
	}
	if rt.Stats.Misspecs != 0 {
		t.Errorf("unexpected misspeculations: %d", rt.Stats.Misspecs)
	}
	if rt.Stats.ProvenRangeBytes == 0 {
		t.Error("no proven ranges were wholesale-installed at runtime")
	}

	// The elision-only baseline must agree bit-for-bit and must not claim
	// any static proofs.
	base, err := Parallelize(buildPrivTable(n), Options{DisableStaticSep: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Regions) != 1 {
		t.Fatalf("baseline selected %d regions, want 1", len(base.Regions))
	}
	if base.Regions[0].TStats.StaticProven != 0 {
		t.Error("DisableStaticSep build still discharged checks statically")
	}
	brt, bgot, err := Run(base, specrt.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if bgot != got || brt.Output() != rt.Output() {
		t.Errorf("baseline and proven builds diverge: %d vs %d", bgot, got)
	}
	if brt.Stats.ProvenRangeBytes != 0 {
		t.Error("baseline build installed proven ranges")
	}
}

func TestStaticSepAuditCleanRun(t *testing.T) {
	const n = 40
	seqVal, _, err := RunSequential(buildPrivTable(n))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Parallelize(buildPrivTable(n), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt, got, err := Run(par, specrt.Config{Workers: 4, SepAudit: true})
	if err != nil {
		t.Fatal(err)
	}
	if got != seqVal {
		t.Errorf("result %d, want %d", got, seqVal)
	}
	if rt.Stats.SepAuditViolations != 0 {
		t.Errorf("audit flagged %d violations on sound proofs:\n%v",
			rt.Stats.SepAuditViolations, rt.SepAuditReport())
	}
}

// buildLateWriter reads cfg every iteration and stores through a
// data-dependent pointer that targets a scratch cell for iterations
// below 20 and cfg itself from iteration 20 on. The Select keeps the
// store unconditional (no control speculation can elide it); trained
// with n=16 the profile only ever sees the scratch target, so cfg
// classifies read-only. The static prover correctly refuses the proof —
// the store's points-to set includes cfg — so planting it models a
// prover bug the runtime audit oracle must catch before the late store
// silently corrupts the run.
func buildLateWriter(n int64) *ir.Module {
	m := ir.NewModule("latewr")
	cfg := m.NewGlobal("cfg", 8)
	cfg.Init = []byte{9, 0, 0, 0, 0, 0, 0, 0}
	scratch := m.NewGlobal("scratch", 8)
	out := m.NewGlobal("out", 8)
	f := m.NewFunc("main", ir.I64)
	f.NewParam("n", ir.I64)
	b := ir.NewBuilder(f)
	nv := f.Params[0]
	b.For("i", b.I(0), nv, func(iv *ir.Instr) {
		v := b.Load(b.Global(cfg), 8)
		outAddr := b.Global(out)
		b.Store(b.Add(b.Load(outAddr, 8), v), outAddr, 8)
		tgt := b.Select(b.SLt(b.Ld(iv), b.I(20)), b.Global(scratch), b.Global(cfg))
		b.Store(b.Ld(iv), tgt, 8)
	})
	b.Ret(b.Load(b.Global(out), 8))
	_ = n
	ir.PromoteAllocas(f)
	return m
}

func TestStaticSepAuditCatchesPlantedProof(t *testing.T) {
	par, err := Parallelize(buildLateWriter(32), Options{
		TrainArgs:   []uint64{16},
		PlantProofs: map[string]string{"@cfg": "readonly"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Regions) == 0 {
		t.Skipf("loop not selected:\n%s", par.Summary())
	}
	sep := par.Regions[0].Assign.Sep
	cfg := profiling.Object{Global: par.Mod.Globals["cfg"]}
	if !sep.ProvenFor(cfg, ir.HeapReadOnly) {
		t.Fatal("plant did not take; the test premise is broken")
	}
	rt, _, err := Run(par, specrt.Config{Workers: 4, SepAudit: true}, 32)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rt.Stats.SepAuditViolations == 0 {
		t.Error("the audit oracle missed the planted unsound read-only proof")
	}
	if len(rt.SepAuditReport()) == 0 {
		t.Error("no violation details were reported")
	}
}
