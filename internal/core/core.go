// Package core is the public face of the Privateer reproduction: the fully
// automatic pipeline of section 4 (profile, classify, select, transform)
// plus entry points for running the result under the speculative runtime,
// under the non-speculative DOALL-only baseline, and sequentially.
//
//	mod := buildProgram()                        // IR via the builder
//	par, _ := core.Parallelize(mod, core.Options{TrainArgs: ...})
//	rt, _ := core.Run(par, specrt.Config{Workers: 24})
package core

import (
	"fmt"
	"sort"
	"strings"

	"privateer/internal/analysis"
	"privateer/internal/classify"
	"privateer/internal/deps"
	"privateer/internal/doall"
	"privateer/internal/interp"
	"privateer/internal/ir"
	"privateer/internal/profiling"
	"privateer/internal/specrt"
	"privateer/internal/transform"
	"privateer/internal/vm"
)

// Options controls the compiler pipeline.
type Options struct {
	// TrainArgs are the entry arguments for the profiling run (the train
	// input).
	TrainArgs []uint64
	// MaxLoops bounds how many loops are selected (0 = no bound).
	MaxLoops int
	// MinLoopSteps filters loops whose profiled execution time share is
	// negligible (absolute step count; 0 selects a small default).
	MinLoopSteps int64
	// DisableValuePrediction, DisableElision and DisablePostprocess are
	// ablation knobs (see classify.Options and transform.Options).
	DisableValuePrediction bool
	DisableElision         bool
	DisablePostprocess     bool
	// DisableStaticSep turns off the static separation prover: every
	// object keeps its full dynamic machinery (the PR-7 elision-only
	// build, used as the staticsep experiment baseline).
	DisableStaticSep bool
	// PlantProofs force-injects deliberately-unsound proofs, keyed by
	// object name ("@global" or "fn:site") with a proof-rule value. It
	// exists solely so tests and the audit harness can verify that the
	// dynamic oracles catch a wrong static claim; never set it otherwise.
	PlantProofs map[string]string
}

// LoopReport records the pipeline's decision about one hot loop.
type LoopReport struct {
	// Loop names the loop.
	Loop string
	// Steps is the loop's profiled execution-time share.
	Steps int64
	// Selected is true if the loop was privatized and parallelized.
	Selected bool
	// Reason explains rejection (empty when selected).
	Reason string
	// Assignment is the heap assignment (selected loops only).
	Assignment *classify.Assignment
}

// Parallelized is the output of the compiler pipeline: a transformed module
// plus the artifacts the runtime needs.
type Parallelized struct {
	// Mod is the transformed module.
	Mod *ir.Module
	// Regions holds one entry per selected loop.
	Regions []*specrt.RegionInfo
	// Profile is the training profile.
	Profile *profiling.Profile
	// Reports explains every hot-loop decision, hottest first.
	Reports []LoopReport
}

// Parallelize runs the fully automatic pipeline on mod, mutating it in
// place. The module must verify and should be in SSA form (PromoteAllocas).
func Parallelize(mod *ir.Module, opts Options) (*Parallelized, error) {
	if err := ir.Verify(mod); err != nil {
		return nil, fmt.Errorf("core: input module invalid: %w", err)
	}
	prof, err := profiling.Run(mod, opts.TrainArgs...)
	if err != nil {
		return nil, fmt.Errorf("core: profiling failed: %w", err)
	}
	pt := analysis.ComputePointsTo(mod)

	// A loop is "hot" when it holds at least ~1% of the profiled execution
	// time (and a small absolute floor keeps toy modules sensible).
	minSteps := opts.MinLoopSteps
	if minSteps == 0 {
		minSteps = prof.Steps / 100
		if minSteps < 100 {
			minSteps = 100
		}
	}

	out := &Parallelized{Mod: mod, Profile: prof}
	// Heap assignments must be compatible across selected loops: one
	// object cannot live in two heaps.
	committed := map[profiling.Object]ir.HeapKind{}
	selectedLoops := []*ir.Loop{}

	for _, li := range prof.HotLoops() {
		l := li.Loop
		rep := LoopReport{Loop: l.String(), Steps: li.Steps}
		switch {
		case li.Steps < minSteps:
			rep.Reason = "cold"
		case li.Invocations > 0 && li.Iterations < 3*li.Invocations:
			// Iterations counts header trips, so this is fewer than two
			// body iterations per invocation: no parallelism to extract,
			// and a single-iteration profile cannot expose the loop's
			// carried dependences (a one-epoch training run looks
			// spuriously DOALL-able), so speculation would only
			// misspeculate. Skipping it lets a hot inner loop be selected.
			rep.Reason = "too few iterations per invocation to profit"
		case conflictsWithSelected(l, selectedLoops):
			rep.Reason = "may be simultaneously active with a selected loop"
		default:
			a := classify.ClassifyOpts(l, prof, classify.Options{
				DisableValuePrediction: opts.DisableValuePrediction,
			})
			plan := deps.SpeculativeBlockers(l, prof, a)
			if len(plan.Blockers) > 0 {
				rep.Reason = plan.Blockers[0].String()
				break
			}
			if conflict := heapConflict(a, committed); conflict != "" {
				rep.Reason = conflict
				break
			}
			if !opts.DisableStaticSep {
				a.Sep = analysis.ProveSeparation(l, pt, analysis.SepCandidates{
					ReadOnly:   a.ReadOnly,
					ShortLived: a.ShortLived,
					Private:    a.Private,
					Redux:      a.Redux,
				})
				for name, rule := range opts.PlantProofs {
					for _, oh := range a.Objects() {
						if oh.Object.String() == name {
							a.Sep.Plant(oh.Object, analysis.ProofRule(rule))
						}
					}
				}
			}
			res, err := transform.ApplyOpts(mod, l, prof, a, plan, pt,
				transform.Options{
					DisableElision:     opts.DisableElision,
					DisablePostprocess: opts.DisablePostprocess,
				})
			if err != nil {
				rep.Reason = err.Error()
				break
			}
			iv := ir.FindInductionVar(l)
			if iv == nil {
				rep.Reason = "no canonical induction variable"
				break
			}
			outline, err := doall.Outline(mod, l, iv)
			if err != nil {
				rep.Reason = err.Error()
				break
			}
			rep.Selected = true
			rep.Assignment = a
			selectedLoops = append(selectedLoops, l)
			for _, oh := range a.Objects() {
				committed[oh.Object] = oh.Heap
			}
			out.Regions = append(out.Regions, &specrt.RegionInfo{
				Outline: outline,
				Assign:  a,
				Plan:    plan,
				TStats:  res.Stats,
			})
		}
		out.Reports = append(out.Reports, rep)
		if opts.MaxLoops > 0 && len(out.Regions) >= opts.MaxLoops {
			break
		}
	}
	if err := ir.Verify(mod); err != nil {
		return nil, fmt.Errorf("core: transformed module invalid: %w", err)
	}
	return out, nil
}

// conflictsWithSelected applies section 4.3's nesting constraint: two loops
// that may be simultaneously active are incompatible. Loops conflict when
// one contains the other, or when one can call the function holding the
// other.
func conflictsWithSelected(l *ir.Loop, selected []*ir.Loop) bool {
	for _, s := range selected {
		// Containment is checked by block identity, which stays valid even
		// after a selected loop's blocks were outlined into __iter.
		if s.Contains(l.Header) || l.Contains(s.Header) {
			return true
		}
		if l.Header.Fn != s.Header.Fn &&
			(loopCanReachFunc(s, l.Header.Fn) || loopCanReachFunc(l, s.Header.Fn)) {
			return true
		}
	}
	return false
}

// loopCanReachFunc reports whether code inside l can call into target.
func loopCanReachFunc(l *ir.Loop, target *ir.Function) bool {
	seen := map[*ir.Function]bool{}
	var scan func(f *ir.Function) bool
	scan = func(f *ir.Function) bool {
		if f == target {
			return true
		}
		if seen[f] {
			return false
		}
		seen[f] = true
		found := false
		f.Instrs(func(in *ir.Instr) {
			if !found && in.Op == ir.OpCall && scan(in.Callee) {
				found = true
			}
		})
		return found
	}
	for _, b := range l.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && scan(in.Callee) {
				return true
			}
		}
	}
	return false
}

// heapConflict reports whether assignment a disagrees with heaps already
// committed by previously selected loops.
func heapConflict(a *classify.Assignment, committed map[profiling.Object]ir.HeapKind) string {
	for _, oh := range a.Objects() {
		if prev, ok := committed[oh.Object]; ok && prev != oh.Heap {
			return fmt.Sprintf("object %s assigned to both %s and %s heaps",
				oh.Object, prev, oh.Heap)
		}
	}
	return ""
}

// Run executes the parallelized program under the speculative runtime.
func Run(p *Parallelized, cfg specrt.Config, args ...uint64) (*specrt.RT, uint64, error) {
	rt := specrt.New(p.Mod, cfg, p.Regions...)
	ret, err := rt.Run(args...)
	return rt, ret, err
}

// RunSequential executes a module sequentially and returns the result and
// its printed output. For a fair "best sequential" baseline, pass a freshly
// built, untransformed module.
func RunSequential(mod *ir.Module, args ...uint64) (uint64, string, error) {
	it := interp.New(mod, vm.NewAddressSpace())
	ret, err := it.Run(args...)
	return ret, it.Out.String(), err
}

// Summary renders the pipeline decisions for reports and tools.
func (p *Parallelized) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s: %d region(s) parallelized\n", p.Mod.Name, len(p.Regions))
	reps := append([]LoopReport(nil), p.Reports...)
	sort.SliceStable(reps, func(i, j int) bool { return reps[i].Steps > reps[j].Steps })
	for _, r := range reps {
		status := "selected"
		if !r.Selected {
			status = "rejected: " + r.Reason
		}
		fmt.Fprintf(&sb, "  loop %-28s steps=%-10d %s\n", r.Loop, r.Steps, status)
	}
	for _, ri := range p.Regions {
		fmt.Fprintf(&sb, "\n%s", ri.Assign)
		fmt.Fprintf(&sb, "  extras: %s\n", ri.TStats.Extras(ri.Plan))
	}
	return sb.String()
}
