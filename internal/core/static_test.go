package core

import (
	"strings"
	"testing"

	"privateer/internal/ir"
)

// buildAffine builds a statically parallelizable kernel plus a tail check.
func buildAffine(n int64) *ir.Module {
	m := ir.NewModule("affine")
	src := m.NewGlobal("src", n*8)
	dst := m.NewGlobal("dst", n*8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("init", b.I(0), b.I(n), func(iv *ir.Instr) {
		b.Store(b.Mul(b.Ld(iv), b.I(3)), b.Add(b.Global(src), b.Mul(b.Ld(iv), b.I(8))), 8)
	})
	b.For("i", b.I(0), b.I(n), func(iv *ir.Instr) {
		v := b.Load(b.Add(b.Global(src), b.Mul(b.Ld(iv), b.I(8))), 8)
		b.Store(b.Add(v, b.I(7)), b.Add(b.Global(dst), b.Mul(b.Ld(iv), b.I(8))), 8)
	})
	acc := b.Local("acc")
	b.St(b.I(0), acc)
	b.For("j", b.I(0), b.I(n), func(jv *ir.Instr) {
		b.St(b.Add(b.Ld(acc), b.Load(b.Add(b.Global(dst), b.Mul(b.Ld(jv), b.I(8))), 8)), acc)
	})
	b.Ret(b.Ld(acc))
	for _, fn := range m.SortedFuncs() {
		ir.PromoteAllocas(fn)
	}
	return m
}

func TestParallelizeStaticSelectsAffineLoops(t *testing.T) {
	want, _, err := RunSequential(buildAffine(64))
	if err != nil {
		t.Fatal(err)
	}
	static, err := ParallelizeStatic(buildAffine(64), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(static.Regions) == 0 {
		t.Fatalf("nothing selected:\n%+v", static.Reports)
	}
	for _, workers := range []int{1, 4} {
		run, err := RunStatic(static, workers)
		if err != nil {
			t.Fatal(err)
		}
		if run.Ret != want {
			t.Errorf("workers=%d: %d, want %d", workers, run.Ret, want)
		}
		if run.SimTime() <= 0 {
			t.Error("no simulated time recorded")
		}
	}
}

func TestParallelizeStaticRejectsIrregular(t *testing.T) {
	// A pointer-chasing update loop must be rejected.
	m := ir.NewModule("chase")
	tbl := m.NewGlobal("tbl", 64*8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(16), func(iv *ir.Instr) {
		idx := b.Load(b.Global(tbl), 8)
		b.Store(b.Ld(iv), b.Add(b.Global(tbl), b.Mul(b.SRem(idx, b.I(64)), b.I(8))), 8)
	})
	b.Ret(b.I(0))
	ir.PromoteAllocas(f)
	static, err := ParallelizeStatic(m, Options{MinLoopSteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(static.Regions) != 0 {
		t.Errorf("irregular loop selected: %+v", static.Reports)
	}
}

func TestMaxLoopsOption(t *testing.T) {
	par, err := Parallelize(buildAffine(64), Options{MaxLoops: 1, MinLoopSteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Regions) > 1 {
		t.Errorf("MaxLoops ignored: %d regions", len(par.Regions))
	}
	if !strings.Contains(par.Summary(), "region(s) parallelized") {
		t.Error("summary header missing")
	}
}
