package analysis

import (
	"testing"

	"privateer/internal/ir"
	"privateer/internal/profiling"
)

// buildPtrFlow: a global holds a pointer to a malloc'd object; a load
// retrieves it and stores through it.
func buildPtrFlow(t *testing.T) (*ir.Module, *ir.Global, *ir.Instr, *ir.Instr) {
	t.Helper()
	m := ir.NewModule("ptr")
	slot := m.NewGlobal("slot", 8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	obj := b.Malloc("obj", b.I(64))
	b.Store(obj, b.Global(slot), 8)
	loaded := b.LoadPtr(b.Global(slot))
	b.Store(b.I(7), loaded, 8)
	b.Ret(b.Load(loaded, 8))
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	return m, slot, obj, loaded
}

func TestPointsToTracksHeapFlow(t *testing.T) {
	m, slot, obj, loaded := buildPtrFlow(t)
	pt := ComputePointsTo(m)
	f := m.Funcs["main"]
	objs := pt.ValueObjects(f, loaded)
	if !objs[profiling.Object{Site: obj}] {
		t.Errorf("loaded pointer should point to the malloc site, got %v", objs.Names())
	}
	if objs[Unknown] {
		t.Error("loaded pointer should be fully resolved")
	}
	// The global's address and the loaded pointer must not alias (they
	// reference different objects).
	var slotAddr ir.Value
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpGlobal && in.GlobalRef == slot {
			slotAddr = in
		}
	})
	if pt.MayAlias(f, slotAddr, f, loaded) {
		t.Error("slot address and loaded object should not alias")
	}
}

func TestPointsToThroughCalls(t *testing.T) {
	m := ir.NewModule("call")
	mk := m.NewFunc("mk", ir.Ptr)
	var site *ir.Instr
	{
		b := ir.NewBuilder(mk)
		site = b.Malloc("thing", b.I(8))
		b.Ret(site)
	}
	use := m.NewFunc("use", ir.Void)
	up := use.NewParam("p", ir.Ptr)
	{
		b := ir.NewBuilder(use)
		b.Store(b.I(1), up, 8)
		b.Ret()
	}
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	p := b.Call(mk)
	b.Call(use, p)
	b.Ret(b.I(0))
	pt := ComputePointsTo(m)
	// The call result flows from the callee's return.
	if objs := pt.ValueObjects(f, p); !objs[profiling.Object{Site: site}] {
		t.Errorf("call result misses callee allocation: %v", objs.Names())
	}
	// The parameter receives the argument's objects.
	if objs := pt.ValueObjects(use, up); !objs[profiling.Object{Site: site}] {
		t.Errorf("parameter misses argument objects: %v", objs.Names())
	}
}

func TestPointsToPhiAndSelect(t *testing.T) {
	m := ir.NewModule("phi")
	g1 := m.NewGlobal("g1", 8)
	g2 := m.NewGlobal("g2", 8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	a1 := b.Global(g1)
	a2 := b.Global(g2)
	sel := b.Select(b.I(1), a1, a2)
	b.Ret(b.Load(sel, 8))
	pt := ComputePointsTo(m)
	objs := pt.ValueObjects(f, sel)
	if !objs[profiling.Object{Global: g1}] || !objs[profiling.Object{Global: g2}] {
		t.Errorf("select should point to both globals: %v", objs.Names())
	}
}

func TestUnknownForOpaqueValues(t *testing.T) {
	m := ir.NewModule("opaque")
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	v := b.IntToPtrVal(b.I(0x1234)) // a manufactured pointer
	b.Ret(b.Load(v, 8))
	pt := ComputePointsTo(m)
	objs := pt.ValueObjects(f, v)
	if !objs[Unknown] {
		t.Errorf("manufactured pointer should be Unknown: %v", objs.Names())
	}
	// Unknown aliases everything.
	g := m.NewGlobal("g", 8)
	_ = g
	if !pt.MayAlias(f, v, f, v) {
		t.Error("unknown must alias itself")
	}
}

// --- affine analysis ---

// loopWith builds `for (i=0; i<n; i++) body(iv)` in SSA form and returns
// the loop + IV.
func loopWith(t *testing.T, body func(b *ir.Builder, iv *ir.Instr) ir.Value) (*ir.Loop, *ir.InductionVar, ir.Value) {
	t.Helper()
	m := ir.NewModule("aff")
	g := m.NewGlobal("arr", 8*128)
	_ = g
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	var addr ir.Value
	b.For("i", b.I(0), b.I(16), func(iv *ir.Instr) {
		addr = body(b, iv)
		b.Store(b.I(1), addr, 8)
	})
	b.Ret(b.I(0))
	ir.PromoteAllocas(f)
	f.Recompute()
	dt := ir.BuildDomTree(f)
	loops := ir.FindLoops(f, dt)
	if len(loops) != 1 {
		t.Fatalf("loops = %d", len(loops))
	}
	iv := ir.FindInductionVar(loops[0])
	if iv == nil {
		t.Fatal("no IV")
	}
	// addr was built with the alloca'd iv; after mem2reg its operands were
	// rewritten in place, so addr is still the right instruction.
	return loops[0], iv, addr
}

func TestAffineBasic(t *testing.T) {
	var gRef *ir.Global
	l, iv, addr := loopWith(t, func(b *ir.Builder, ivv *ir.Instr) ir.Value {
		gRef = b.F.Mod.Globals["arr"]
		return b.Add(b.Global(gRef), b.Mul(b.Ld(ivv), b.I(8)))
	})
	a, ok := DecomposeAffine(l, iv, addr)
	if !ok {
		t.Fatal("affine decomposition failed")
	}
	if a.Base != interface{}(gRef) || a.Stride != 8 || a.Offset != 0 {
		t.Errorf("affine = %+v, want base=arr stride=8 offset=0", a)
	}
}

func TestAffineWithOffsetAndShl(t *testing.T) {
	l, iv, addr := loopWith(t, func(b *ir.Builder, ivv *ir.Instr) ir.Value {
		// arr + (i << 3) + 16
		return b.Add(b.Add(b.Global(b.F.Mod.Globals["arr"]), b.Shl(b.Ld(ivv), b.I(3))), b.I(16))
	})
	a, ok := DecomposeAffine(l, iv, addr)
	if !ok {
		t.Fatal("decomposition failed")
	}
	if a.Stride != 8 || a.Offset != 16 {
		t.Errorf("affine = %+v, want stride=8 offset=16", a)
	}
}

func TestAffineRejectsModulo(t *testing.T) {
	l, iv, addr := loopWith(t, func(b *ir.Builder, ivv *ir.Instr) ir.Value {
		return b.Add(b.Global(b.F.Mod.Globals["arr"]), b.Mul(b.SRem(b.Ld(ivv), b.I(4)), b.I(8)))
	})
	if _, ok := DecomposeAffine(l, iv, addr); ok {
		t.Error("modulo indexing must not be affine")
	}
}

func TestNoCarriedOverlapRules(t *testing.T) {
	base := &ir.Global{Name: "x"}
	cases := []struct {
		a, b       Affine
		sa, sb     int64
		wantNoConf bool
	}{
		{Affine{base, 8, 0}, Affine{base, 8, 0}, 8, 8, true},   // same slot per iter
		{Affine{base, 8, 0}, Affine{base, 8, 4}, 4, 4, true},   // disjoint 4-byte windows within an 8-byte stride
		{Affine{base, 8, 0}, Affine{base, 8, 4}, 8, 8, false},  // windows overlap
		{Affine{base, 0, 0}, Affine{base, 0, 0}, 8, 8, false},  // stride 0: same byte every iteration
		{Affine{base, 16, 0}, Affine{base, 8, 0}, 8, 8, false}, // stride mismatch
		{Affine{base, -8, 0}, Affine{base, -8, 0}, 8, 8, true}, // negative stride fine
		{Affine{nil, 8, 0}, Affine{base, 8, 0}, 8, 8, false},   // different bases
	}
	for i, c := range cases {
		got := NoCarriedOverlap(c.a, c.b, c.sa, c.sb)
		if got != c.wantNoConf {
			t.Errorf("case %d: NoCarriedOverlap = %v, want %v", i, got, c.wantNoConf)
		}
	}
}
