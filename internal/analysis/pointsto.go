// Package analysis implements conservative static analyses over Privateer
// IR: an Andersen-style, allocation-site-based, field-insensitive points-to
// analysis and an affine access-pattern analysis for canonical loops.
//
// These are the "static analysis" of the paper's comparison: strong enough
// to parallelize regular array kernels (the DOALL-only baseline of Figure 7)
// and to elide provably redundant separation checks (section 4.5), but —
// deliberately, as in the paper — defeated by pointer indirection, dynamic
// allocation and irregular data structures, which is exactly the gap
// speculative separation closes.
package analysis

import (
	"privateer/internal/ir"
	"privateer/internal/profiling"
)

// Unknown is the abstract object standing for anything the analysis cannot
// name: unresolved integers used as pointers, external memory, or null.
var Unknown = profiling.Object{}

// PointsTo is the result of the whole-module points-to analysis.
type PointsTo struct {
	// valueSets maps every SSA value (per function, by value ID) to its
	// points-to set.
	valueSets map[*ir.Function][]objSet
	// heapSets maps each abstract object to the points-to set of the
	// pointers stored inside it (field-insensitive).
	heapSets map[profiling.Object]objSet
}

type objSet map[profiling.Object]bool

func (s objSet) add(o profiling.Object) bool {
	if s[o] {
		return false
	}
	s[o] = true
	return true
}

// ValueObjects returns the abstract objects v may point to within f. A set
// containing Unknown may point anywhere.
func (pt *PointsTo) ValueObjects(f *ir.Function, v ir.Value) profiling.ObjectSet {
	out := profiling.ObjectSet{}
	sets := pt.valueSets[f]
	if sets == nil || v.ValueID() >= len(sets) {
		out[Unknown] = true
		return out
	}
	for o := range sets[v.ValueID()] {
		out[o] = true
	}
	if len(out) == 0 {
		// A value with no recorded targets is not a proven-null pointer;
		// treat it as unknown.
		out[Unknown] = true
	}
	return out
}

// MayAlias reports whether values a and b (in functions fa and fb) may
// reference overlapping storage.
func (pt *PointsTo) MayAlias(fa *ir.Function, a ir.Value, fb *ir.Function, b ir.Value) bool {
	sa := pt.ValueObjects(fa, a)
	sb := pt.ValueObjects(fb, b)
	if sa[Unknown] || sb[Unknown] {
		return true
	}
	for o := range sa {
		if sb[o] {
			return true
		}
	}
	return false
}

// ComputePointsTo runs the Andersen-style analysis over the module to a
// fixpoint. Direct calls are handled context-insensitively; every value is
// tracked regardless of static type, since integers may carry disguised
// pointers through casts.
func ComputePointsTo(m *ir.Module) *PointsTo {
	pt := &PointsTo{
		valueSets: map[*ir.Function][]objSet{},
		heapSets:  map[profiling.Object]objSet{},
	}
	for _, f := range m.SortedFuncs() {
		sets := make([]objSet, f.NumValues())
		for i := range sets {
			sets[i] = objSet{}
		}
		pt.valueSets[f] = sets
	}
	heapSet := func(o profiling.Object) objSet {
		s := pt.heapSets[o]
		if s == nil {
			s = objSet{}
			pt.heapSets[o] = s
		}
		return s
	}

	// Iterate transfer functions to a fixpoint. Module sizes are small, so
	// a simple round-robin pass is adequate.
	for changed := true; changed; {
		changed = false
		flowInto := func(dst objSet, src objSet) {
			for o := range src {
				if dst.add(o) {
					changed = true
				}
			}
		}
		for _, f := range m.SortedFuncs() {
			sets := pt.valueSets[f]
			get := func(v ir.Value) objSet { return sets[v.ValueID()] }
			f.Instrs(func(in *ir.Instr) {
				switch in.Op {
				case ir.OpAlloca, ir.OpMalloc, ir.OpHAlloc:
					if get(in).add(profiling.Object{Site: in}) {
						changed = true
					}
				case ir.OpGlobal:
					if get(in).add(profiling.Object{Global: in.GlobalRef}) {
						changed = true
					}
				case ir.OpAdd, ir.OpSub:
					// Pointer arithmetic: the result may point into any
					// object either operand points into.
					flowInto(get(in), get(in.Args[0]))
					flowInto(get(in), get(in.Args[1]))
				case ir.OpSelect:
					flowInto(get(in), get(in.Args[1]))
					flowInto(get(in), get(in.Args[2]))
				case ir.OpPhi:
					for _, a := range in.Args {
						flowInto(get(in), get(a))
					}
				case ir.OpPtrToInt, ir.OpIntToPtr:
					flowInto(get(in), get(in.Args[0]))
				case ir.OpLoad:
					// r = load p: heap(o) flows to r for each o in pts(p).
					// A load whose result set stays empty holds scalar
					// data; if such a value is nevertheless used as a
					// pointer, ValueObjects reports Unknown at query time.
					addrs := get(in.Args[0])
					for o := range addrs {
						if o == Unknown {
							if get(in).add(Unknown) {
								changed = true
							}
							continue
						}
						flowInto(get(in), heapSet(o))
					}
				case ir.OpStore:
					// store v, p: pts(v) flows into heap(o).
					addrs := get(in.Args[1])
					val := get(in.Args[0])
					for o := range addrs {
						if o == Unknown {
							continue
						}
						flowInto(heapSet(o), val)
					}
				case ir.OpCall:
					callee := in.Callee
					csets := pt.valueSets[callee]
					for i, p := range callee.Params {
						for o := range get(in.Args[i]) {
							if csets[p.ValueID()].add(o) {
								changed = true
							}
						}
					}
					// Return value: union of all callee ret operands.
					for _, b := range callee.Blocks {
						if t := b.Terminator(); t != nil && t.Op == ir.OpRet && len(t.Args) == 1 {
							flowInto(get(in), csets[t.Args[0].ValueID()])
						}
					}
				}
			})
		}
	}
	return pt
}
