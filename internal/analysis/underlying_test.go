package analysis

import (
	"testing"

	"privateer/internal/ir"
)

// TestUnderlyingObjectGEPChain: nested add/sub/cast chains over a single
// pointer base all strip back to the allocation.
func TestUnderlyingObjectGEPChain(t *testing.T) {
	m := ir.NewModule("uo")
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	base := b.Malloc("arr", b.I(256))
	// arr + 8
	p1 := b.Add(base, b.I(8))
	// (arr + 8) + (i * 16)
	idx := b.Mul(b.I(3), b.I(16))
	p2 := b.Add(p1, idx)
	// casts round-trip
	p3 := b.IntToPtrVal(b.PtrToInt(p2))
	// pointer on the right-hand side of the add
	p4 := b.Add(b.I(4), p3)
	// constant displacement backwards
	p5 := b.Sub(p4, b.I(2))
	b.Ret(b.I(0))

	for i, v := range []ir.Value{base, p1, p2, p3, p4, p5} {
		if got := UnderlyingObject(v); got != ir.Value(base) {
			t.Errorf("step %d: UnderlyingObject = %v, want the malloc", i, got)
		}
	}
}

// TestUnderlyingObjectGlobal: interior pointers into a global strip to the
// OpGlobal instruction.
func TestUnderlyingObjectGlobal(t *testing.T) {
	m := ir.NewModule("uo")
	g := m.NewGlobal("tab", 64)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	ga := b.Global(g)
	p := b.Add(b.Add(ga, b.I(16)), b.I(8))
	b.Ret(b.I(0))
	if got := UnderlyingObject(p); got != ir.Value(ga) {
		t.Errorf("UnderlyingObject = %v, want the global address", got)
	}
}

// TestUnderlyingObjectStopsAtPhi: a phi merging two bases is itself the
// underlying value — the walk must not pick a side.
func TestUnderlyingObjectStopsAtPhi(t *testing.T) {
	m := ir.NewModule("uo")
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	a1 := b.Malloc("a1", b.I(8))
	a2 := b.Malloc("a2", b.I(8))
	entry := b.B
	left := b.NewBlock("left")
	right := b.NewBlock("right")
	join := b.NewBlock("join")
	b.SetBlock(entry)
	b.CondBr(b.I(1), left, right)
	b.SetBlock(left)
	b.Br(join)
	b.SetBlock(right)
	b.Br(join)
	b.SetBlock(join)
	phi := b.Phi(ir.Ptr)
	ir.AddIncoming(phi, a1, left)
	ir.AddIncoming(phi, a2, right)
	derived := b.Add(phi, b.I(4))
	b.Ret(b.I(0))

	if got := UnderlyingObject(derived); got != ir.Value(phi) {
		t.Errorf("UnderlyingObject through a phi = %v, want the phi itself", got)
	}
}

// TestUnderlyingObjectStopsAtSelect: same contract for select.
func TestUnderlyingObjectStopsAtSelect(t *testing.T) {
	m := ir.NewModule("uo")
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	a1 := b.Malloc("a1", b.I(8))
	a2 := b.Malloc("a2", b.I(8))
	sel := b.Select(b.I(1), a1, a2)
	derived := b.IntToPtrVal(b.PtrToInt(b.Add(sel, b.I(8))))
	b.Ret(b.I(0))
	if got := UnderlyingObject(derived); got != ir.Value(sel) {
		t.Errorf("UnderlyingObject through a select = %v, want the select itself", got)
	}
}

// TestUnderlyingObjectAmbiguousIntAdd: an add of two integers (no
// pointer-typed side) stops the walk at the add.
func TestUnderlyingObjectAmbiguousIntAdd(t *testing.T) {
	m := ir.NewModule("uo")
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	base := b.Malloc("arr", b.I(64))
	i1 := b.PtrToInt(base)
	sum := b.Add(b.Add(i1, b.I(0)), b.I(8)) // i1 is I64 after the cast
	b.Ret(b.I(0))
	// PtrToInt is stripped, so the inner add still reaches the malloc; the
	// important property is that the walk never invents a base when both
	// operands are integers with no pointer flow.
	if got := UnderlyingObject(sum); got != ir.Value(base) {
		// Acceptable alternative: the walk stopped at an add. It must be
		// one of the two — never a different object.
		if in, ok := got.(*ir.Instr); !ok || in.Op != ir.OpAdd {
			t.Errorf("UnderlyingObject = %v, want the malloc or a stopping add", got)
		}
	}
	// A param (opaque non-instr value) is returned unchanged.
	g := m.NewFunc("g", ir.Void)
	p := g.NewParam("p", ir.Ptr)
	if got := UnderlyingObject(p); got != ir.Value(p) {
		t.Errorf("UnderlyingObject(param) = %v, want the param", got)
	}
}
