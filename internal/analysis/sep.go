package analysis

// The static separation prover. The dynamic pipeline classifies objects
// into logical heaps from a training profile and then guards the
// classification with runtime checks (check_heap, privacy marks, shadow
// merge/validate walks). This file proves, per loop region and per
// allocation site or global, that a classification claim holds on *every*
// execution — in which case the guards for that object are not merely
// elidable but unnecessary, and the transformer drops them entirely.
//
// Proof rules (each named by a ProofRule, each surfaced as a counter):
//
//   - RuleReadOnly (StaticReadOnly): no instruction that may write memory
//     inside the region — including transitive callees, frees and
//     deallocations — can target the object: every region write's
//     points-to set excludes it and is Unknown-free.
//
//   - RuleIterLocal (StaticPrivate via escape analysis): the object is
//     allocated inside the loop body, freed on every path that completes
//     an iteration (the free dominates all latches), and its pointer
//     never escapes the iteration: it is never stored into memory other
//     than itself, never passed to a callee, never returned, never
//     carried by a header phi, and never reaches a value outside the
//     loop.
//
//   - RuleAffineDisjoint (StaticPrivate via NoCarriedOverlap generalized
//     to sets of accesses): every region access that may touch the
//     object is an affine load/store in the loop's own body, and every
//     pair involving a write is carried-disjoint.
//
//   - RuleCoveredWrite (StaticPrivate via covering writes): every read of
//     the object inside an iteration is dominated by writes that fully
//     re-initialize it within that same iteration, so no value can flow
//     in from a previous iteration. Coverage accumulates from
//     constant-offset stores, constant memsets, and counted inner loops
//     that store a contiguous stride; callees may be "self-covering"
//     (they re-initialize the object before any internal read).
//
//   - RuleRedux (StaticRedux): the syntactic reduction sequence
//     (load; associative-commutative op; store to the same address) is
//     provably the only access path to the object inside the region.
//
// Soundness notes. May-information (which accesses might touch the
// object) always comes from the Unknown-closed points-to sets; a proof is
// attempted only when every relevant set is Unknown-free, which
// MayAlias's contract tests pin. Must-information (coverage intervals)
// never comes from points-to: it requires baseOf, a separate walk that
// resolves a value to the *definite* base address of an object through
// casts, uniform phis/selects, and parameters whose every call site
// passes the same base. Within-iteration ordering uses dominance: for
// blocks A, B in the loop body, A dom B implies A executed in the same
// iteration before B — a header-to-B path avoiding A would compose with
// the A-free entry-to-header prefix into an entry-to-B path avoiding A,
// contradicting A dom B. A counted inner loop's coverage completes at
// its exit block only when that block's single predecessor is the loop
// header, so reaching it implies all iterations ran.
//
// A wrong static proof silently corrupts output instead of
// misspeculating, so every claim the prover emits is audited dynamically:
// see internal/audit (profile-based oracle) and specrt's SepAudit mode
// (runtime read-before-write/write-to-readonly oracle).

import (
	"fmt"
	"sort"
	"strings"

	"privateer/internal/ir"
	"privateer/internal/profiling"
)

// ProofRule names one static separation proof rule.
type ProofRule string

// The proof rules, in the order the prover attempts them within a class.
const (
	RuleReadOnly       ProofRule = "readonly"
	RuleIterLocal      ProofRule = "iterlocal"
	RuleCoveredWrite   ProofRule = "covered"
	RuleAffineDisjoint ProofRule = "affine"
	RuleRedux          ProofRule = "redux"
)

// Rules lists every proof rule in deterministic report order.
var Rules = []ProofRule{RuleReadOnly, RuleIterLocal, RuleCoveredWrite, RuleAffineDisjoint, RuleRedux}

// SepCandidates carries, per dynamic classification class, the objects the
// prover should attempt to verify statically. The classification only
// selects which claims are attempted; the proofs themselves use static
// facts exclusively, which is what lets the dynamic profile act as an
// independent audit oracle afterwards.
type SepCandidates struct {
	// ReadOnly holds objects the profile classified read-only.
	ReadOnly profiling.ObjectSet
	// ShortLived holds objects the profile classified iteration-local.
	ShortLived profiling.ObjectSet
	// Private holds objects the profile classified private.
	Private profiling.ObjectSet
	// Redux holds objects the profile classified as reductions.
	Redux profiling.ObjectSet
}

// SepResult is the prover's verdict for one loop region.
type SepResult struct {
	// Loop is the region the proofs are scoped to.
	Loop *ir.Loop
	// Proven maps each statically-proven object to its winning rule.
	Proven map[profiling.Object]ProofRule
	// FullOverwrite marks proven covered-write objects with the stronger
	// property that every region iteration unconditionally rewrites the
	// whole object (covering elements dominate every latch) and the object
	// provably outlives the region (it cannot be allocated inside it).
	// Only these objects may have their privacy marks dropped wholesale:
	// the runtime then installs the object's content from the worker that
	// executed each interval's last iteration, which is exactly the
	// sequential final state because earlier iterations' values are dead.
	FullOverwrite map[profiling.Object]bool
	// Writes records every object some region write may target, and
	// WritesUnknown whether any region write address is unresolvable.
	// Together they let the runtime decide region-level questions (e.g.
	// "can this region write the read-only heap at all?") beyond the
	// per-candidate proofs.
	Writes profiling.ObjectSet
	// WritesUnknown reports an unresolvable region write (see Writes).
	WritesUnknown bool
}

// StaticallyPrivatized reports whether o's per-access privacy marks can
// be dropped entirely: proven covered-write AND fully overwritten every
// iteration, so the runtime's wholesale range install reproduces the
// sequential final content.
func (r *SepResult) StaticallyPrivatized(o profiling.Object) bool {
	return r != nil && r.Proven[o] == RuleCoveredWrite && r.FullOverwrite[o]
}

// Rule returns o's winning proof rule, if any.
func (r *SepResult) Rule(o profiling.Object) (ProofRule, bool) {
	if r == nil {
		return "", false
	}
	rule, ok := r.Proven[o]
	return rule, ok
}

// ProvenFor reports whether o carries a proof that discharges the dynamic
// machinery of heap h: the rule must match the claim the heap encodes.
func (r *SepResult) ProvenFor(o profiling.Object, h ir.HeapKind) bool {
	rule, ok := r.Rule(o)
	if !ok {
		return false
	}
	switch h {
	case ir.HeapReadOnly:
		return rule == RuleReadOnly
	case ir.HeapShortLived:
		return rule == RuleIterLocal
	case ir.HeapPrivate:
		return rule == RuleCoveredWrite || rule == RuleAffineDisjoint
	case ir.HeapRedux:
		return rule == RuleRedux
	}
	return false
}

// CountByRule returns the number of proven objects per rule.
func (r *SepResult) CountByRule() map[ProofRule]int {
	out := map[ProofRule]int{}
	if r == nil {
		return out
	}
	for _, rule := range r.Proven {
		out[rule]++
	}
	return out
}

// ByRule returns, per rule, the sorted names of proven objects.
func (r *SepResult) ByRule() map[ProofRule][]string {
	out := map[ProofRule][]string{}
	if r == nil {
		return out
	}
	for o, rule := range r.Proven {
		out[rule] = append(out[rule], o.String())
	}
	for _, ns := range out {
		sort.Strings(ns)
	}
	return out
}

// Summary renders the result deterministically, one "rule: objects" line
// per nonempty rule.
func (r *SepResult) Summary() string {
	by := r.ByRule()
	var sb strings.Builder
	for _, rule := range Rules {
		if ns := by[rule]; len(ns) > 0 {
			fmt.Fprintf(&sb, "%-9s %s\n", string(rule)+":", strings.Join(ns, " "))
		}
	}
	if sb.Len() == 0 {
		return "(nothing proven)\n"
	}
	return sb.String()
}

// Plant forces an entry into the result. It exists solely so tests and
// the audit harness can inject a deliberately-unsound proof and verify
// the oracles catch it; production code must never call it.
func (r *SepResult) Plant(o profiling.Object, rule ProofRule) {
	if r.Proven == nil {
		r.Proven = map[profiling.Object]ProofRule{}
	}
	r.Proven[o] = rule
	if rule == RuleCoveredWrite {
		// Planted covered claims must reach the wholesale mark-drop path,
		// or the oracle under test would never see the unsound drop.
		if r.FullOverwrite == nil {
			r.FullOverwrite = map[profiling.Object]bool{}
		}
		r.FullOverwrite[o] = true
	}
}

// sepProver bundles the per-region state shared by the proof rules.
type sepProver struct {
	l      *ir.Loop
	fn     *ir.Function
	pt     *PointsTo
	writes []*ir.Instr
	reads  []*ir.Instr
	// unknownWrite / unknownRead record whether any region write / read has
	// an unresolvable address; each poisons whole families of proofs.
	unknownWrite bool
	unknownRead  bool
	// written holds every object some region write may target.
	written profiling.ObjectSet

	doms     map[*ir.Function]*ir.DomTree
	loops    map[*ir.Function][]*ir.Loop
	mayRead  map[*ir.Function]map[profiling.Object]int8 // memo: 0 unknown, 1 no, 2 yes
	selfCov  map[*ir.Function]map[profiling.Object]int8 // memo: 0 unvisited, 1 false/visiting, 2 true
	fullWr   map[*ir.Function]map[profiling.Object]int8 // memo for calleeFullyWrites, same encoding
	baseMemo map[ir.Value]baseResult
}

type baseResult struct {
	obj profiling.Object
	ok  bool
}

// ProveSeparation runs the static separation prover for loop l over the
// candidate objects. The returned result maps each object it could prove
// to the rule that proved it; objects absent from the map keep their full
// dynamic machinery.
func ProveSeparation(l *ir.Loop, pt *PointsTo, cand SepCandidates) *SepResult {
	sp := &sepProver{
		l: l, fn: l.Header.Fn, pt: pt,
		written:  profiling.ObjectSet{},
		doms:     map[*ir.Function]*ir.DomTree{},
		loops:    map[*ir.Function][]*ir.Loop{},
		mayRead:  map[*ir.Function]map[profiling.Object]int8{},
		selfCov:  map[*ir.Function]map[profiling.Object]int8{},
		fullWr:   map[*ir.Function]map[profiling.Object]int8{},
		baseMemo: map[ir.Value]baseResult{},
	}
	sp.writes, sp.reads = ir.RegionMemOps(l)
	for _, w := range sp.writes {
		objs := sp.objsOf(w, writeAddrOf(w))
		if objs[Unknown] {
			sp.unknownWrite = true
		}
		sp.written.Union(objs)
	}
	for _, r := range sp.reads {
		if sp.objsOf(r, readAddrOf(r))[Unknown] {
			sp.unknownRead = true
		}
	}

	res := &SepResult{
		Loop:          l,
		Proven:        map[profiling.Object]ProofRule{},
		FullOverwrite: map[profiling.Object]bool{},
		Writes:        sp.written,
		WritesUnknown: sp.unknownWrite,
	}
	prove := func(set profiling.ObjectSet, try func(profiling.Object) (ProofRule, bool)) {
		for _, o := range sortedObjects(set) {
			if rule, ok := try(o); ok {
				res.Proven[o] = rule
			}
		}
	}
	prove(cand.ReadOnly, func(o profiling.Object) (ProofRule, bool) {
		return RuleReadOnly, sp.proveReadOnly(o)
	})
	prove(cand.ShortLived, func(o profiling.Object) (ProofRule, bool) {
		return RuleIterLocal, sp.proveIterLocal(o)
	})
	prove(cand.Private, func(o profiling.Object) (ProofRule, bool) {
		if sp.proveCoveredWrite(o) {
			if size, ok := objectSize(o); ok && sp.fullOverwrite(o, size) {
				res.FullOverwrite[o] = true
			}
			return RuleCoveredWrite, true
		}
		return RuleAffineDisjoint, sp.proveAffineDisjoint(o)
	})
	prove(cand.Redux, func(o profiling.Object) (ProofRule, bool) {
		return RuleRedux, sp.proveRedux(o)
	})
	return res
}

// sortedObjects returns the set's objects in deterministic name order.
func sortedObjects(s profiling.ObjectSet) []profiling.Object {
	objs := make([]profiling.Object, 0, len(s))
	for o := range s {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].String() < objs[j].String() })
	return objs
}

// writeAddrOf returns the destination address operand of a writing memory
// op.
func writeAddrOf(in *ir.Instr) ir.Value {
	switch in.Op {
	case ir.OpStore:
		return in.Args[1]
	case ir.OpMemSet, ir.OpMemCopy, ir.OpFree, ir.OpHDealloc:
		return in.Args[0]
	}
	return nil
}

// readAddrOf returns the source address operand of a reading memory op.
func readAddrOf(in *ir.Instr) ir.Value {
	switch in.Op {
	case ir.OpLoad:
		return in.Args[0]
	case ir.OpMemCopy:
		return in.Args[1]
	}
	return nil
}

// objsOf resolves the points-to set of addr in in's function.
func (sp *sepProver) objsOf(in *ir.Instr, addr ir.Value) profiling.ObjectSet {
	return sp.pt.ValueObjects(in.Blk.Fn, addr)
}

// dom returns (building lazily) f's dominator tree.
func (sp *sepProver) dom(f *ir.Function) *ir.DomTree {
	if dt := sp.doms[f]; dt != nil {
		return dt
	}
	f.Recompute()
	dt := ir.BuildDomTree(f)
	sp.doms[f] = dt
	return dt
}

// funcLoops returns (building lazily) f's natural loops.
func (sp *sepProver) funcLoops(f *ir.Function) []*ir.Loop {
	if ls, ok := sp.loops[f]; ok {
		return ls
	}
	ls := ir.FindLoops(f, sp.dom(f))
	sp.loops[f] = ls
	return ls
}

// ---------------------------------------------------------------------------
// RuleReadOnly

// proveReadOnly: no region write may target o, and no region write is
// unresolvable (an Unknown write could target anything, including o).
func (sp *sepProver) proveReadOnly(o profiling.Object) bool {
	return !sp.unknownWrite && !sp.written[o]
}

// ---------------------------------------------------------------------------
// RuleIterLocal

// proveIterLocal: o is allocated in the loop body, freed on every
// completed-iteration path, and its pointer provably never escapes the
// iteration.
func (sp *sepProver) proveIterLocal(o profiling.Object) bool {
	site := o.Site
	if site == nil || !sp.l.ContainsInstr(site) || site.Blk.Fn != sp.fn {
		return false
	}
	switch site.Op {
	case ir.OpMalloc, ir.OpAlloca, ir.OpHAlloc:
	default:
		return false
	}
	// A free of exactly o, in the loop body, dominating every latch: every
	// iteration that takes the back edge has released the object.
	dt := sp.dom(sp.fn)
	freed := false
	for _, w := range sp.writes {
		if w.Op != ir.OpFree && w.Op != ir.OpHDealloc {
			continue
		}
		objs := sp.objsOf(w, writeAddrOf(w))
		if len(objs) != 1 || !objs[o] {
			continue
		}
		if w.Blk.Fn != sp.fn || !sp.l.ContainsInstr(w) {
			continue
		}
		all := true
		for _, latch := range sp.l.Latches {
			if !dt.Dominates(w.Blk, latch) {
				all = false
				break
			}
		}
		if all {
			freed = true
			break
		}
	}
	if !freed {
		return false
	}
	// Escape analysis over value flow: the pointer must stay inside the
	// iteration. Module-wide, no store may save it (except into o itself),
	// no call may receive it, no return may surface it; in the loop's own
	// function no value outside the body and no header phi may carry it.
	escape := false
	mod := sp.fn.Mod
	for _, f := range mod.SortedFuncs() {
		f.Instrs(func(in *ir.Instr) {
			if escape {
				return
			}
			switch in.Op {
			case ir.OpStore:
				if sp.pt.ValueObjects(f, in.Args[0])[o] {
					dst := sp.pt.ValueObjects(f, in.Args[1])
					if len(dst) != 1 || !dst[o] {
						escape = true
					}
				}
			case ir.OpCall, ir.OpBuiltin, ir.OpPrint:
				for _, a := range in.Args {
					if sp.pt.ValueObjects(f, a)[o] {
						escape = true
					}
				}
			case ir.OpRet:
				for _, a := range in.Args {
					if sp.pt.ValueObjects(f, a)[o] {
						escape = true
					}
				}
			}
		})
		if escape {
			return false
		}
	}
	// Values carrying o outside the iteration: anything outside the loop
	// body in the defining function, or a loop-header phi.
	leaked := false
	sp.fn.Instrs(func(in *ir.Instr) {
		if leaked || in.Typ == ir.Void {
			return
		}
		carries := sp.pt.ValueObjects(sp.fn, in)[o]
		if !carries {
			return
		}
		if !sp.l.ContainsInstr(in) {
			leaked = true
		}
		if in.Op == ir.OpPhi && in.Blk == sp.l.Header {
			leaked = true
		}
	})
	return !leaked
}

// ---------------------------------------------------------------------------
// RuleAffineDisjoint

// proveAffineDisjoint: every access that may touch o is an affine
// load/store of the loop's own induction variable, and every pair with a
// write on at least one side is carried-disjoint (NoCarriedOverlap over
// the whole access set, including an access against itself).
func (sp *sepProver) proveAffineDisjoint(o profiling.Object) bool {
	if sp.unknownWrite {
		return false
	}
	iv := ir.FindInductionVar(sp.l)
	if iv == nil {
		return false
	}
	type acc struct {
		aff   Affine
		size  int64
		write bool
	}
	var accs []acc
	collect := func(ins []*ir.Instr, addrOf func(*ir.Instr) ir.Value, write bool) bool {
		for _, in := range ins {
			addr := addrOf(in)
			if addr == nil || !sp.objsOf(in, addr)[o] {
				continue
			}
			if in.Op != ir.OpLoad && in.Op != ir.OpStore {
				return false // frees, memsets, memcopies: no affine footprint
			}
			if in.Blk.Fn != sp.fn || !sp.l.ContainsInstr(in) {
				return false // callee accesses have no affine form in l's IV
			}
			aff, ok := DecomposeAffine(sp.l, iv, addr)
			if !ok {
				return false
			}
			accs = append(accs, acc{aff: aff, size: in.Size, write: write})
		}
		return true
	}
	if !collect(sp.writes, writeAddrOf, true) || !collect(sp.reads, readAddrOf, false) {
		return false
	}
	if len(accs) == 0 {
		return false
	}
	for i, a := range accs {
		for _, b := range accs[i:] {
			if !a.write && !b.write {
				continue
			}
			if !NoCarriedOverlap(a.aff, b.aff, a.size, b.size) {
				return false
			}
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// RuleCoveredWrite

// covElem is one coverage element: bytes [lo,hi) of the object are fully
// written once control passes the completion point (an instruction for
// straight-line stores, a counted loop's exit block).
type covElem struct {
	lo, hi int64
	instr  *ir.Instr
	block  *ir.Block
}

// covers reports whether the element's completion point strictly precedes
// instruction r on every path.
func (e covElem) covers(dt *ir.DomTree, r *ir.Instr) bool {
	if e.instr != nil {
		return dominatesInstr(dt, e.instr, r)
	}
	return dt.Dominates(e.block, r.Blk)
}

// dominatesInstr reports whether a executes before b on every path
// reaching b (both in the same function).
func dominatesInstr(dt *ir.DomTree, a, b *ir.Instr) bool {
	if a.Blk == b.Blk {
		for _, in := range a.Blk.Instrs {
			if in == a {
				return true
			}
			if in == b {
				return false
			}
		}
		return false
	}
	return dt.Dominates(a.Blk, b.Blk)
}

// objectSize returns o's byte size when statically known.
func objectSize(o profiling.Object) (int64, bool) {
	if o.Global != nil {
		return o.Global.Size, true
	}
	site := o.Site
	if site == nil {
		return 0, false
	}
	switch site.Op {
	case ir.OpAlloca:
		return site.Size, true
	case ir.OpMalloc, ir.OpHAlloc:
		if c, ok := site.Args[0].(*ir.Instr); ok && c.Op == ir.OpConst {
			return int64(c.Const), true
		}
	}
	return 0, false
}

// proveCoveredWrite: every read of o inside an iteration is preceded, in
// that same iteration, by writes covering all of o.
func (sp *sepProver) proveCoveredWrite(o profiling.Object) bool {
	if sp.unknownRead {
		return false
	}
	size, ok := objectSize(o)
	if !ok || size <= 0 {
		return false
	}
	// A region free of o would end the instance mid-region; reject.
	for _, w := range sp.writes {
		if (w.Op == ir.OpFree || w.Op == ir.OpHDealloc) && sp.objsOf(w, writeAddrOf(w))[o] {
			return false
		}
	}
	inBody := func(b *ir.Block) bool { return b.Fn == sp.fn && sp.l.Contains(b) }
	subLoops := func() []*ir.Loop {
		var out []*ir.Loop
		for _, c := range sp.funcLoops(sp.fn) {
			if c != sp.l && sp.l.Contains(c.Header) {
				out = append(out, c)
			}
		}
		return out
	}
	return sp.coveredInScope(sp.fn, inBody, subLoops(), o, size)
}

// fullOverwrite checks the stronger property behind StaticallyPrivatized:
// every iteration of l unconditionally rewrites all of o. Coverage
// elements count only when their completion point dominates every latch
// (they execute on every path through the iteration body); a call counts
// when its callee provably rewrites all of o before returning. The object
// must also outlive the region — it must not be allocatable during it —
// because the runtime's install registry only knows master-side objects,
// and a worker-allocated instance that escaped would otherwise lose its
// unmarked writes. Canonical loop shape (FindInductionVar) guarantees a
// body iteration always reaches the latch, so latch dominance implies
// per-iteration execution.
func (sp *sepProver) fullOverwrite(o profiling.Object, size int64) bool {
	if ir.FindInductionVar(sp.l) == nil {
		return false
	}
	if o.Site != nil && (sp.l.ContainsInstr(o.Site) || sp.regionCanReach(o.Site.Blk.Fn)) {
		return false
	}
	dt := sp.dom(sp.fn)
	domLatches := func(b *ir.Block) bool {
		for _, latch := range sp.l.Latches {
			if !dt.Dominates(b, latch) {
				return false
			}
		}
		return true
	}
	inBody := func(b *ir.Block) bool { return b.Fn == sp.fn && sp.l.Contains(b) }
	var sub []*ir.Loop
	for _, c := range sp.funcLoops(sp.fn) {
		if c != sp.l && sp.l.Contains(c.Header) {
			sub = append(sub, c)
		}
	}
	var ivs [][2]int64
	for _, e := range sp.coverageElems(sp.fn, inBody, sub, o) {
		blk := e.block
		if e.instr != nil {
			blk = e.instr.Blk
		}
		if domLatches(blk) {
			ivs = append(ivs, [2]int64{e.lo, e.hi})
		}
	}
	for _, b := range sp.fn.Blocks {
		if !inBody(b) {
			continue
		}
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && domLatches(in.Blk) && sp.calleeFullyWrites(in.Callee, o, size) {
				ivs = append(ivs, [2]int64{0, size})
			}
		}
	}
	return intervalsCover(ivs, size)
}

// regionCanReach reports whether code inside l can (transitively) call
// target, i.e. whether target's body may execute during the region.
func (sp *sepProver) regionCanReach(target *ir.Function) bool {
	seen := map[*ir.Function]bool{}
	var scan func(f *ir.Function) bool
	scan = func(f *ir.Function) bool {
		if f == target {
			return true
		}
		if seen[f] {
			return false
		}
		seen[f] = true
		found := false
		f.Instrs(func(in *ir.Instr) {
			if !found && in.Op == ir.OpCall && scan(in.Callee) {
				found = true
			}
		})
		return found
	}
	for _, b := range sp.l.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && scan(in.Callee) {
				return true
			}
		}
	}
	return false
}

// calleeFullyWrites reports whether every call to f rewrites all of o
// before returning, on every path: coverage elements (or nested such
// calls) dominating every return block must cover [0,size). Recursion is
// not provably full-writing.
func (sp *sepProver) calleeFullyWrites(f *ir.Function, o profiling.Object, size int64) bool {
	memo := sp.fullWr[f]
	if memo == nil {
		memo = map[profiling.Object]int8{}
		sp.fullWr[f] = memo
	}
	switch memo[o] {
	case 1:
		return false
	case 2:
		return true
	}
	memo[o] = 1 // visiting
	dt := sp.dom(f)
	var rets []*ir.Block
	for _, b := range f.Blocks {
		if n := len(b.Instrs); n > 0 && b.Instrs[n-1].Op == ir.OpRet {
			rets = append(rets, b)
		}
	}
	if len(rets) == 0 {
		return false
	}
	domRets := func(b *ir.Block) bool {
		for _, r := range rets {
			if !dt.Dominates(b, r) {
				return false
			}
		}
		return true
	}
	var ivs [][2]int64
	all := func(b *ir.Block) bool { return b.Fn == f }
	for _, e := range sp.coverageElems(f, all, sp.funcLoops(f), o) {
		blk := e.block
		if e.instr != nil {
			blk = e.instr.Blk
		}
		if domRets(blk) {
			ivs = append(ivs, [2]int64{e.lo, e.hi})
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && domRets(in.Blk) && sp.calleeFullyWrites(in.Callee, o, size) {
				ivs = append(ivs, [2]int64{0, size})
			}
		}
	}
	ok := intervalsCover(ivs, size)
	if ok {
		memo[o] = 2
	}
	return ok
}

// mayReadObj reports whether f, or a transitive callee, contains a read
// that may target o.
func (sp *sepProver) mayReadObj(f *ir.Function, o profiling.Object) bool {
	memo := sp.mayRead[f]
	if memo == nil {
		memo = map[profiling.Object]int8{}
		sp.mayRead[f] = memo
	}
	switch memo[o] {
	case 1:
		return false
	case 2:
		return true
	}
	memo[o] = 1 // visiting: cycles resolve to "no" on this path
	found := false
	f.Instrs(func(in *ir.Instr) {
		if found {
			return
		}
		switch in.Op {
		case ir.OpLoad, ir.OpMemCopy:
			if sp.objsOf(in, readAddrOf(in))[o] {
				found = true
			}
		case ir.OpCall:
			if sp.mayReadObj(in.Callee, o) {
				found = true
			}
		}
	})
	if found {
		memo[o] = 2
	}
	return found
}

// selfCovering reports whether f re-initializes all of o before any of
// its own (or its callees') reads of o can execute.
func (sp *sepProver) selfCovering(f *ir.Function, o profiling.Object, size int64) bool {
	memo := sp.selfCov[f]
	if memo == nil {
		memo = map[profiling.Object]int8{}
		sp.selfCov[f] = memo
	}
	switch memo[o] {
	case 1:
		return false
	case 2:
		return true
	}
	memo[o] = 1 // visiting: recursion is not provably covering
	ok := sp.coveredInScope(f, func(b *ir.Block) bool { return b.Fn == f }, sp.funcLoops(f), o, size)
	if ok {
		memo[o] = 2
	}
	return ok
}

// coveredInScope checks the covered-write condition for o over one scope:
// either a whole function body or l's loop body. Scope membership is
// inScope; candidate covering loops are loops. Every read point in scope —
// a direct may-read of o, or a call to a may-read-o callee that is not
// itself self-covering — must be dominated by elements covering [0,size).
func (sp *sepProver) coveredInScope(f *ir.Function, inScope func(*ir.Block) bool, loops []*ir.Loop, o profiling.Object, size int64) bool {
	dt := sp.dom(f)
	elems := sp.coverageElems(f, inScope, loops, o)

	covered := func(r *ir.Instr) bool {
		var ivs [][2]int64
		for _, e := range elems {
			if e.covers(dt, r) {
				ivs = append(ivs, [2]int64{e.lo, e.hi})
			}
		}
		return intervalsCover(ivs, size)
	}

	ok := true
	for _, b := range f.Blocks {
		if !ok || !inScope(b) {
			continue
		}
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpLoad, ir.OpMemCopy:
				if addr := readAddrOf(in); addr != nil && sp.objsOf(in, addr)[o] && !covered(in) {
					ok = false
				}
			case ir.OpCall:
				if !sp.mayReadObj(in.Callee, o) {
					continue
				}
				if sp.selfCovering(in.Callee, o, size) {
					continue
				}
				if !covered(in) {
					ok = false
				}
			}
			if !ok {
				break
			}
		}
	}
	return ok
}

// coverageElems gathers the coverage elements available inside the scope.
func (sp *sepProver) coverageElems(f *ir.Function, inScope func(*ir.Block) bool, loops []*ir.Loop, o profiling.Object) []covElem {
	dt := sp.dom(f)
	var elems []covElem
	// Constant-offset stores and constant memsets.
	for _, b := range f.Blocks {
		if !inScope(b) {
			continue
		}
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpStore:
				base, off := peelConstOffset(in.Args[1])
				if bo, ok := sp.baseOf(base); ok && bo == o && in.Size > 0 {
					elems = append(elems, covElem{lo: off, hi: off + in.Size, instr: in})
				}
			case ir.OpMemSet:
				base, off := peelConstOffset(in.Args[0])
				bo, ok := sp.baseOf(base)
				if !ok || bo != o {
					continue
				}
				if c, isC := in.Args[1].(*ir.Instr); isC && c.Op == ir.OpConst && int64(c.Const) > 0 {
					elems = append(elems, covElem{lo: off, hi: off + int64(c.Const), instr: in})
				}
			}
		}
	}
	// Counted covering loops.
	for _, c := range loops {
		if !inScope(c.Header) {
			continue
		}
		iv := ir.FindInductionVar(c)
		if iv == nil {
			continue
		}
		initC, okI := constValue(iv.Init)
		limitC, okL := constValue(iv.Limit)
		if !okI || !okL || initC >= limitC {
			continue
		}
		exit := iv.ExitBlock
		if len(exit.Preds()) != 1 {
			// With multiple predecessors, reaching the exit does not imply
			// the loop ran to completion.
			continue
		}
		// The loop must not read o at all: an in-loop read would need its
		// own per-element ordering argument.
		readsO := false
		for _, cb := range c.Blocks {
			for _, in := range cb.Instrs {
				switch in.Op {
				case ir.OpLoad, ir.OpMemCopy:
					if addr := readAddrOf(in); addr != nil && sp.objsOf(in, addr)[o] {
						readsO = true
					}
				case ir.OpCall:
					if sp.mayReadObj(in.Callee, o) {
						readsO = true
					}
				}
			}
		}
		if readsO {
			continue
		}
		for _, cb := range c.Blocks {
			for _, in := range cb.Instrs {
				if in.Op != ir.OpStore || in.Size <= 0 {
					continue
				}
				aff, ok := DecomposeAffine(c, iv, in.Args[1])
				if !ok || aff.Stride != in.Size {
					continue
				}
				bo, ok := sp.resolveAffineBase(aff.Base)
				if !ok || bo != o {
					continue
				}
				// The store must run every iteration.
				all := true
				for _, latch := range c.Latches {
					if !dt.Dominates(in.Blk, latch) {
						all = false
						break
					}
				}
				if !all {
					continue
				}
				elems = append(elems, covElem{
					lo:    aff.Offset + initC*aff.Stride,
					hi:    aff.Offset + limitC*aff.Stride,
					block: exit,
				})
			}
		}
	}
	return elems
}

// intervalsCover reports whether the union of the intervals contains
// [0,size).
func intervalsCover(ivs [][2]int64, size int64) bool {
	if len(ivs) == 0 {
		return false
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i][0] < ivs[j][0] })
	reach := int64(0)
	for _, iv := range ivs {
		if iv[0] > reach {
			return false
		}
		if iv[1] > reach {
			reach = iv[1]
		}
		if reach >= size {
			return true
		}
	}
	return reach >= size
}

// constValue unwraps an OpConst operand.
func constValue(v ir.Value) (int64, bool) {
	if in, ok := v.(*ir.Instr); ok && in.Op == ir.OpConst {
		return int64(in.Const), true
	}
	return 0, false
}

// peelConstOffset strips constant add/sub displacements and casts,
// returning the residual base value and the accumulated offset.
func peelConstOffset(v ir.Value) (ir.Value, int64) {
	off := int64(0)
	for {
		in, ok := v.(*ir.Instr)
		if !ok {
			return v, off
		}
		switch in.Op {
		case ir.OpPtrToInt, ir.OpIntToPtr:
			v = in.Args[0]
		case ir.OpAdd:
			if c, isC := constValue(in.Args[1]); isC {
				v, off = in.Args[0], off+c
			} else if c, isC := constValue(in.Args[0]); isC {
				v, off = in.Args[1], off+c
			} else {
				return v, off
			}
		case ir.OpSub:
			if c, isC := constValue(in.Args[1]); isC {
				v, off = in.Args[0], off-c
			} else {
				return v, off
			}
		default:
			return v, off
		}
	}
}

// resolveAffineBase maps an Affine.Base (an *ir.Global after
// canonicalization, or an ir.Value) to the definite object it is the base
// address of.
func (sp *sepProver) resolveAffineBase(base interface{}) (profiling.Object, bool) {
	switch b := base.(type) {
	case *ir.Global:
		return profiling.Object{Global: b}, true
	case ir.Value:
		return sp.baseOf(b)
	}
	return profiling.Object{}, false
}

// baseOf resolves v to the object whose base address v definitely is.
// Unlike points-to (a may-analysis over interior pointers), this is
// must-information: coverage intervals are only sound when computed
// relative to the true base. The walk follows casts, uniform phi/select,
// and parameters whose every call site passes the same base; cycles and
// anything else fail.
func (sp *sepProver) baseOf(v ir.Value) (profiling.Object, bool) {
	if r, ok := sp.baseMemo[v]; ok {
		return r.obj, r.ok
	}
	// Mark in-progress: recursive queries (phi cycles, recursive calls)
	// resolve to failure rather than looping.
	sp.baseMemo[v] = baseResult{}
	obj, ok := sp.baseOfUncached(v)
	sp.baseMemo[v] = baseResult{obj: obj, ok: ok}
	return obj, ok
}

func (sp *sepProver) baseOfUncached(v ir.Value) (profiling.Object, bool) {
	switch val := v.(type) {
	case *ir.Param:
		f := val.Fn
		var got profiling.Object
		found := false
		for _, caller := range f.Mod.SortedFuncs() {
			bad := false
			caller.Instrs(func(in *ir.Instr) {
				if bad || in.Op != ir.OpCall || in.Callee != f || val.Index >= len(in.Args) {
					return
				}
				o, ok := sp.baseOf(in.Args[val.Index])
				if !ok || (found && o != got) {
					bad = true
					return
				}
				got, found = o, true
			})
			if bad {
				return profiling.Object{}, false
			}
		}
		return got, found
	case *ir.Instr:
		switch val.Op {
		case ir.OpGlobal:
			return profiling.Object{Global: val.GlobalRef}, true
		case ir.OpAlloca, ir.OpMalloc, ir.OpHAlloc:
			return profiling.Object{Site: val}, true
		case ir.OpPtrToInt, ir.OpIntToPtr:
			return sp.baseOf(val.Args[0])
		case ir.OpPhi:
			return sp.uniformBase(val.Args)
		case ir.OpSelect:
			return sp.uniformBase(val.Args[1:])
		}
	}
	return profiling.Object{}, false
}

// uniformBase resolves a set of values that must all share one base.
func (sp *sepProver) uniformBase(vals []ir.Value) (profiling.Object, bool) {
	var got profiling.Object
	found := false
	for _, a := range vals {
		o, ok := sp.baseOf(a)
		if !ok || (found && o != got) {
			return profiling.Object{}, false
		}
		got, found = o, true
	}
	return got, found
}

// ---------------------------------------------------------------------------
// RuleRedux

// proveRedux: every region access that may touch o belongs to a syntactic
// reduction sequence — a load consumed by one associative-commutative
// update stored back through the same address value — and nothing else
// can reach the object.
func (sp *sepProver) proveRedux(o profiling.Object) bool {
	if sp.unknownWrite || sp.unknownRead {
		return false
	}
	for _, w := range sp.writes {
		if !sp.objsOf(w, writeAddrOf(w))[o] {
			continue
		}
		if w.Op != ir.OpStore || !staticReduxStore(w) {
			return false
		}
	}
	seen := false
	for _, r := range sp.reads {
		if !sp.objsOf(r, readAddrOf(r))[o] {
			continue
		}
		if r.Op != ir.OpLoad || !staticReduxLoad(r) {
			return false
		}
		seen = true
	}
	return seen
}

// staticReduxLoad mirrors the classifier's reduction-load pattern with
// static evidence only: some store in the same function stores an
// associative-commutative update of the loaded value back through the
// load's own address value.
func staticReduxLoad(load *ir.Instr) bool {
	addr := load.Args[0]
	found := false
	load.Blk.Fn.Instrs(func(in *ir.Instr) {
		if found || in.Op != ir.OpStore || in.Args[1] != addr {
			return
		}
		op, isInstr := in.Args[0].(*ir.Instr)
		if !isInstr || reduxKindOf(op) == ir.ReduxNone {
			return
		}
		for _, a := range op.Args {
			if a == ir.Value(load) {
				found = true
			}
		}
	})
	return found
}

// staticReduxStore mirrors the classifier's reduction-store pattern: the
// stored value is an associative-commutative op over a load from the same
// address value.
func staticReduxStore(st *ir.Instr) bool {
	op, isInstr := st.Args[0].(*ir.Instr)
	if !isInstr || reduxKindOf(op) == ir.ReduxNone {
		return false
	}
	for _, a := range op.Args {
		if ld, isLoad := a.(*ir.Instr); isLoad && ld.Op == ir.OpLoad && ld.Args[0] == st.Args[1] {
			return true
		}
	}
	return false
}

// reduxKindOf maps an instruction to the reduction operator it
// implements, if associative and commutative (the static mirror of the
// classifier's operator table).
func reduxKindOf(in *ir.Instr) ir.ReduxKind {
	switch in.Op {
	case ir.OpAdd:
		return ir.ReduxAddI64
	case ir.OpFAdd:
		return ir.ReduxAddF64
	case ir.OpSelect:
		cond, isInstr := in.Args[0].(*ir.Instr)
		if !isInstr {
			return ir.ReduxNone
		}
		switch cond.Op {
		case ir.OpSLt, ir.OpSLe:
			return ir.ReduxMinI64
		case ir.OpSGt, ir.OpSGe:
			return ir.ReduxMaxI64
		case ir.OpFLt, ir.OpFLe:
			return ir.ReduxMinF64
		case ir.OpFGt, ir.OpFGe:
			return ir.ReduxMaxF64
		}
	}
	return ir.ReduxNone
}
