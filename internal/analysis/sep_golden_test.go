package analysis_test

// Golden regression test for the static separation prover: for each paper
// program, the exact set of proven objects (rule -> object names) on the
// train input is pinned. A legitimate prover improvement may add lines
// here; anything disappearing means a proof regressed.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"privateer/internal/analysis"
	"privateer/internal/classify"
	"privateer/internal/profiling"
	"privateer/internal/progs"
)

// proveProgram runs profile -> classify -> prover on every hot loop of p's
// train build and renders "loopN/rule: obj obj ..." lines.
func proveProgram(t *testing.T, p *progs.Program) []string {
	t.Helper()
	mod := p.Build(p.Train)
	prof, err := profiling.Run(mod)
	if err != nil {
		t.Fatalf("%s: profiling failed: %v", p.Name, err)
	}
	pt := analysis.ComputePointsTo(mod)
	var lines []string
	for i, li := range prof.HotLoops() {
		a := classify.Classify(li.Loop, prof)
		res := analysis.ProveSeparation(li.Loop, pt, analysis.SepCandidates{
			ReadOnly:   a.ReadOnly,
			ShortLived: a.ShortLived,
			Private:    a.Private,
			Redux:      a.Redux,
		})
		for _, rule := range analysis.Rules {
			if ns := res.ByRule()[rule]; len(ns) > 0 {
				lines = append(lines, fmt.Sprintf("loop%d/%s: %s", i, rule, strings.Join(ns, " ")))
			}
		}
	}
	sort.Strings(lines)
	return lines
}

func TestSepGolden(t *testing.T) {
	golden := map[string][]string{
		"052.alvinn": {
			"loop0/covered: main:hid_delta main:hidden_act main:out_act main:out_delta",
			"loop0/readonly: @inputs @targets",
			"loop0/redux: @toterr",
			"loop1/covered: main:hid_delta main:hidden_act main:out_act main:out_delta",
			"loop1/readonly: @inputs @targets @w1 @w2",
			"loop1/redux: @sumdw1 @sumdw2 @toterr",
			"loop10/readonly: main:out_delta",
			"loop10/redux: @sumdw2",
			"loop11/readonly: @w2 main:hidden_act",
			"loop12/affine: @sumdw1",
			"loop12/redux: @w1",
			"loop13/covered: main:out_delta",
			"loop13/readonly: @targets main:out_act",
			"loop13/redux: @toterr",
			"loop14/affine: @sumdw2",
			"loop14/redux: @w2",
			"loop2/readonly: @inputs main:hid_delta",
			"loop2/redux: @sumdw1",
			"loop3/covered: main:hidden_act",
			"loop3/readonly: @inputs @w1",
			"loop4/readonly: main:hid_delta",
			"loop4/redux: @sumdw1",
			"loop5/readonly: @inputs @w1",
			"loop6/covered: main:hid_delta",
			"loop6/readonly: @w2 main:hidden_act main:out_delta",
			"loop7/readonly: main:hidden_act main:out_delta",
			"loop7/redux: @sumdw2",
			"loop8/covered: main:out_act",
			"loop8/readonly: @w2 main:hidden_act",
			"loop9/readonly: @w2 main:out_delta",
		},
		"dijkstra": {
			"loop0/covered: @pathcost",
			"loop0/readonly: @adj",
			"loop1/readonly: @adj",
			"loop2/affine: @pathcost",
			"loop2/covered: enqueueQ:node",
			"loop2/readonly: @adj",
			"loop3/covered: @pathcost",
		},
		"blackscholes": {
			"loop0/readonly: @otime @otype @prices_ptr @rate @sptprice @strike @volatility",
			"loop1/covered: setup:prices",
			"loop1/readonly: @otime @otype @rate @sptprice @strike @volatility",
			"loop2/readonly: setup:prices",
			"loop3/readonly: setup:prices",
		},
		"swaptions": {
			"loop0/readonly: @factors @swaptions_arr",
			"loop1/covered: simulate:payoff_vec",
			"loop1/readonly: @factors simulate:path_matrix",
			"loop2/covered: simulate:disc_row simulate:path_row",
			"loop2/readonly: @factors",
			"loop3/readonly: simulate:path_row",
			"loop4/readonly: simulate:payoff_vec",
			"loop5/covered: setup:swaption_rec",
			"loop5/readonly: @seed_tab @strike_tab @swaptions_arr @years_tab",
			"loop6/readonly: @swaptions_arr setup:swaption_rec",
			"loop7/covered: @swaptions_arr",
		},
		"enc-md5": {
			"loop0/covered: @mdstate",
			"loop0/iterlocal: main:digest",
			"loop0/readonly: @Ttab @data @lengths @offsets",
			"loop1/covered: @padbuf",
			"loop2/covered: @padbuf",
			"loop2/readonly: @data",
			"loop3/readonly: @Ttab @data @padbuf",
		},
	}
	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			got := proveProgram(t, p)
			t.Logf("%s proven:\n  %s", p.Name, strings.Join(got, "\n  "))
			want, ok := golden[p.Name]
			if !ok {
				t.Fatalf("no golden entry for program %q", p.Name)
			}
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Errorf("proven-object set changed.\n got:\n  %s\nwant:\n  %s",
					strings.Join(got, "\n  "), strings.Join(want, "\n  "))
			}
		})
	}
}
