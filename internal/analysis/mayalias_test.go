package analysis

import (
	"testing"

	"privateer/internal/ir"
	"privateer/internal/profiling"
)

// These tests pin MayAlias's conservative contract: any query involving an
// opaque value (one whose points-to set degenerates to Unknown) must answer
// "may alias", including across function boundaries. The separation prover
// builds directly on this guarantee — a proof is only attempted when every
// involved set is Unknown-free.

// buildMayAliasModule: main allocates two objects and passes one to a
// callee; the callee also receives an integer forged into a pointer, which
// stays opaque.
func buildMayAliasModule(t *testing.T) (*ir.Module, map[string]ir.Value) {
	t.Helper()
	m := ir.NewModule("alias")
	vals := map[string]ir.Value{}

	callee := m.NewFunc("callee", ir.Void)
	pIn := callee.NewParam("p", ir.Ptr)
	{
		b := ir.NewBuilder(callee)
		b.Store(b.I(1), pIn, 8)
		b.Ret()
	}
	vals["callee.p"] = pIn

	// A function that is never called: its parameter has no inflow and
	// stays fully unknown.
	orphan := m.NewFunc("orphan", ir.Void)
	q1 := orphan.NewParam("q1", ir.Ptr)
	q2 := orphan.NewParam("q2", ir.Ptr)
	{
		b := ir.NewBuilder(orphan)
		b.Ret()
	}
	vals["orphan.q1"] = q1
	vals["orphan.q2"] = q2

	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	a1 := b.Malloc("a1", b.I(32))
	a2 := b.Malloc("a2", b.I(32))
	b.Call(callee, a1)
	b.Ret(b.I(0))
	vals["main.a1"] = a1
	vals["main.a2"] = a2

	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	return m, vals
}

func TestMayAliasUnknownToUnknown(t *testing.T) {
	m, vals := buildMayAliasModule(t)
	pt := ComputePointsTo(m)
	orphan := m.Funcs["orphan"]
	// Both parameters are opaque; the only safe answer is "may alias",
	// even though nothing connects them.
	if !pt.MayAlias(orphan, vals["orphan.q1"], orphan, vals["orphan.q2"]) {
		t.Error("two unknown values must conservatively may-alias")
	}
	if set := pt.ValueObjects(orphan, vals["orphan.q1"]); !set[Unknown] {
		t.Errorf("orphan parameter should be Unknown, got %v", set.Names())
	}
}

func TestMayAliasUnknownToKnown(t *testing.T) {
	m, vals := buildMayAliasModule(t)
	pt := ComputePointsTo(m)
	orphan, main := m.Funcs["orphan"], m.Funcs["main"]
	// An unknown value may alias any known allocation, in either argument
	// order.
	if !pt.MayAlias(orphan, vals["orphan.q1"], main, vals["main.a1"]) {
		t.Error("unknown vs known must conservatively may-alias")
	}
	if !pt.MayAlias(main, vals["main.a2"], orphan, vals["orphan.q2"]) {
		t.Error("known vs unknown must conservatively may-alias")
	}
}

func TestMayAliasCrossFunction(t *testing.T) {
	m, vals := buildMayAliasModule(t)
	pt := ComputePointsTo(m)
	callee, main := m.Funcs["callee"], m.Funcs["main"]
	// a1 flows into the callee parameter: the cross-function query must see
	// the overlap.
	if !pt.MayAlias(callee, vals["callee.p"], main, vals["main.a1"]) {
		t.Error("callee parameter must alias the argument passed to it")
	}
	// a2 never escapes main, so the resolved parameter and a2 are disjoint.
	if pt.MayAlias(callee, vals["callee.p"], main, vals["main.a2"]) {
		t.Error("callee parameter must not alias an allocation never passed in")
	}
	// Sanity: the parameter's set is Unknown-free (pinning that the
	// cross-function "no alias" answer above rests on real resolution, not
	// an accidental empty set).
	set := pt.ValueObjects(callee, vals["callee.p"])
	if set[Unknown] {
		t.Errorf("callee parameter should be resolved, got %v", set.Names())
	}
	if a1 := vals["main.a1"].(*ir.Instr); !set[profiling.Object{Site: a1}] {
		t.Errorf("callee parameter should include a1's site, got %v", set.Names())
	}
}
