package analysis

import "privateer/internal/ir"

// UnderlyingObject strips constant-preserving address arithmetic down to
// the base SSA value: the allocation or global whose heap tag every
// derived interior pointer shares. The walk follows ptr/int casts and the
// pointer-typed side of add/sub chains, and stops conservatively at
// anything that could change the underlying object — phi, select, loads,
// calls, or integer-only arithmetic where the base is ambiguous.
func UnderlyingObject(v ir.Value) ir.Value {
	for {
		in, ok := v.(*ir.Instr)
		if !ok {
			return v
		}
		switch in.Op {
		case ir.OpPtrToInt, ir.OpIntToPtr:
			v = in.Args[0]
		case ir.OpAdd:
			// Follow the pointer-typed side; with two integer operands
			// the base is ambiguous, so stop.
			if in.Args[0].Type() == ir.Ptr {
				v = in.Args[0]
			} else if in.Args[1].Type() == ir.Ptr {
				v = in.Args[1]
			} else {
				return v
			}
		case ir.OpSub:
			if in.Args[0].Type() == ir.Ptr {
				v = in.Args[0]
			} else {
				return v
			}
		default:
			return v
		}
	}
}
