package analysis

import (
	"testing"

	"privateer/internal/ir"
	"privateer/internal/profiling"
)

// runProver promotes allocas, finds main's outermost loop and runs the
// separation prover over it with the given candidates.
func runProver(t *testing.T, m *ir.Module, cand SepCandidates) *SepResult {
	t.Helper()
	for _, fn := range m.SortedFuncs() {
		ir.PromoteAllocas(fn)
		fn.Recompute()
	}
	f := m.Funcs["main"]
	dt := ir.BuildDomTree(f)
	var outer *ir.Loop
	for _, l := range ir.FindLoops(f, dt) {
		if l.Parent == nil {
			outer = l
		}
	}
	if outer == nil {
		t.Fatal("no top-level loop in main")
	}
	return ProveSeparation(outer, ComputePointsTo(m), cand)
}

func objOf(g *ir.Global) profiling.Object  { return profiling.Object{Global: g} }
func siteOf(in *ir.Instr) profiling.Object { return profiling.Object{Site: in} }
func set(os ...profiling.Object) profiling.ObjectSet {
	s := profiling.ObjectSet{}
	for _, o := range os {
		s.Add(o)
	}
	return s
}

func TestSepReadOnly(t *testing.T) {
	m := ir.NewModule("sep")
	gA := m.NewGlobal("ga", 64)
	gB := m.NewGlobal("gb", 64)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(8), func(iv *ir.Instr) {
		slot := b.Add(b.Global(gB), b.Mul(b.Ld(iv), b.I(8)))
		b.Store(b.Ld(b.Add(b.Global(gA), b.Mul(b.Ld(iv), b.I(8)))), slot, 8)
	})
	b.Ret(b.I(0))

	res := runProver(t, m, SepCandidates{ReadOnly: set(objOf(gA))})
	if rule, ok := res.Rule(objOf(gA)); !ok || rule != RuleReadOnly {
		t.Errorf("ga should be proven read-only, got %q ok=%v", rule, ok)
	}
	if !res.ProvenFor(objOf(gA), ir.HeapReadOnly) {
		t.Error("ProvenFor(ga, HeapReadOnly) should hold")
	}
	if res.ProvenFor(objOf(gA), ir.HeapPrivate) {
		t.Error("a read-only proof must not discharge the private heap")
	}
}

func TestSepReadOnlyBlockedByUnknownWrite(t *testing.T) {
	m := ir.NewModule("sep")
	gA := m.NewGlobal("ga", 64)
	gSlot := m.NewGlobal("slot", 8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(8), func(iv *ir.Instr) {
		_ = b.Ld(b.Global(gA))
		// A pointer loaded from a never-initialized slot is opaque; the
		// store through it could hit anything, including ga.
		p := b.LoadPtr(b.Global(gSlot))
		b.Store(b.I(1), p, 8)
	})
	b.Ret(b.I(0))

	res := runProver(t, m, SepCandidates{ReadOnly: set(objOf(gA))})
	if _, ok := res.Rule(objOf(gA)); ok {
		t.Error("an unresolvable region write must block every read-only proof")
	}
}

func TestSepIterLocal(t *testing.T) {
	m := ir.NewModule("sep")
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	var site *ir.Instr
	b.For("i", b.I(0), b.I(8), func(iv *ir.Instr) {
		site = b.Malloc("tmp", b.I(16))
		b.Store(b.Ld(iv), site, 8)
		_ = b.Ld(site)
		b.Free(site)
	})
	b.Ret(b.I(0))

	res := runProver(t, m, SepCandidates{ShortLived: set(siteOf(site))})
	if rule, ok := res.Rule(siteOf(site)); !ok || rule != RuleIterLocal {
		t.Errorf("tmp should be proven iteration-local, got %q ok=%v", rule, ok)
	}
}

func TestSepIterLocalRequiresFree(t *testing.T) {
	m := ir.NewModule("sep")
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	var site *ir.Instr
	b.For("i", b.I(0), b.I(8), func(iv *ir.Instr) {
		site = b.Malloc("tmp", b.I(16))
		b.Store(b.Ld(iv), site, 8)
	})
	b.Ret(b.I(0))

	res := runProver(t, m, SepCandidates{ShortLived: set(siteOf(site))})
	if _, ok := res.Rule(siteOf(site)); ok {
		t.Error("without a latch-dominating free the iteration-local proof must fail")
	}
}

func TestSepIterLocalRejectsEscape(t *testing.T) {
	m := ir.NewModule("sep")
	gSlot := m.NewGlobal("slot", 8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	var site *ir.Instr
	b.For("i", b.I(0), b.I(8), func(iv *ir.Instr) {
		site = b.Malloc("tmp", b.I(16))
		b.Store(site, b.Global(gSlot), 8) // pointer escapes into a global
		b.Free(site)
	})
	b.Ret(b.I(0))

	res := runProver(t, m, SepCandidates{ShortLived: set(siteOf(site))})
	if _, ok := res.Rule(siteOf(site)); ok {
		t.Error("a pointer stored into a global escapes the iteration; proof must fail")
	}
}

func TestSepAffineDisjoint(t *testing.T) {
	m := ir.NewModule("sep")
	g := m.NewGlobal("arr", 64)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(8), func(iv *ir.Instr) {
		slot := b.Add(b.Global(g), b.Mul(b.Ld(iv), b.I(8)))
		b.Store(b.Add(b.Ld(slot), b.I(1)), slot, 8)
	})
	b.Ret(b.I(0))

	res := runProver(t, m, SepCandidates{Private: set(objOf(g))})
	if rule, ok := res.Rule(objOf(g)); !ok || rule != RuleAffineDisjoint {
		t.Errorf("arr should be proven affine-disjoint, got %q ok=%v", rule, ok)
	}
	if !res.ProvenFor(objOf(g), ir.HeapPrivate) {
		t.Error("ProvenFor(arr, HeapPrivate) should hold")
	}
}

func TestSepAffineRejectsInvariantWrite(t *testing.T) {
	m := ir.NewModule("sep")
	g := m.NewGlobal("arr", 64)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(8), func(iv *ir.Instr) {
		// Every iteration writes slot 0 and reads slot i: carried overlap.
		b.Store(b.Ld(b.Add(b.Global(g), b.Mul(b.Ld(iv), b.I(8)))), b.Global(g), 8)
	})
	b.Ret(b.I(0))

	res := runProver(t, m, SepCandidates{Private: set(objOf(g))})
	if _, ok := res.Rule(objOf(g)); ok {
		t.Error("a loop-invariant write address has carried overlap; proof must fail")
	}
}

func TestSepCoveredWriteConstStores(t *testing.T) {
	m := ir.NewModule("sep")
	g := m.NewGlobal("st", 16)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(8), func(iv *ir.Instr) {
		ga := b.Global(g)
		b.Store(b.I(1), ga, 8)
		b.Store(b.I(2), b.Add(ga, b.I(8)), 8)
		_ = b.Ld(b.Add(ga, b.I(8)))
	})
	b.Ret(b.I(0))

	res := runProver(t, m, SepCandidates{Private: set(objOf(g))})
	if rule, ok := res.Rule(objOf(g)); !ok || rule != RuleCoveredWrite {
		t.Errorf("st should be proven covered-write, got %q ok=%v", rule, ok)
	}
}

func TestSepCoveredWriteRejectsPartialCoverage(t *testing.T) {
	m := ir.NewModule("sep")
	g := m.NewGlobal("st", 16)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(8), func(iv *ir.Instr) {
		ga := b.Global(g)
		b.Store(b.I(1), ga, 8) // bytes [8,16) never re-initialized
		_ = b.Ld(b.Add(ga, b.I(8)))
	})
	b.Ret(b.I(0))

	res := runProver(t, m, SepCandidates{Private: set(objOf(g))})
	if rule, ok := res.Rule(objOf(g)); ok && rule == RuleCoveredWrite {
		t.Error("half-covered object must not be proven covered-write")
	}
}

func TestSepCoveredWriteCountedLoop(t *testing.T) {
	m := ir.NewModule("sep")
	g := m.NewGlobal("buf", 64)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(8), func(iv *ir.Instr) {
		b.For("j", b.I(0), b.I(8), func(jv *ir.Instr) {
			b.Store(b.I(0), b.Add(b.Global(g), b.Mul(b.Ld(jv), b.I(8))), 8)
		})
		_ = b.Ld(b.Add(b.Global(g), b.I(24)))
	})
	b.Ret(b.I(0))

	res := runProver(t, m, SepCandidates{Private: set(objOf(g))})
	if rule, ok := res.Rule(objOf(g)); !ok || rule != RuleCoveredWrite {
		t.Errorf("buf should be covered by the counted inner loop, got %q ok=%v", rule, ok)
	}
}

func TestSepCoveredWriteRejectsReadBeforeCoverage(t *testing.T) {
	m := ir.NewModule("sep")
	g := m.NewGlobal("buf", 64)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(8), func(iv *ir.Instr) {
		_ = b.Ld(b.Add(b.Global(g), b.I(24))) // read precedes the covering loop
		b.For("j", b.I(0), b.I(8), func(jv *ir.Instr) {
			b.Store(b.I(0), b.Add(b.Global(g), b.Mul(b.Ld(jv), b.I(8))), 8)
		})
	})
	b.Ret(b.I(0))

	res := runProver(t, m, SepCandidates{Private: set(objOf(g))})
	if rule, ok := res.Rule(objOf(g)); ok && rule == RuleCoveredWrite {
		t.Error("a read before the covering writes must defeat the proof")
	}
}

func TestSepCoveredWriteSelfCoveringCallee(t *testing.T) {
	m := ir.NewModule("sep")
	fill := m.NewFunc("fill", ir.I64)
	p := fill.NewParam("p", ir.Ptr)
	{
		fb := ir.NewBuilder(fill)
		fb.For("j", fb.I(0), fb.I(4), func(jv *ir.Instr) {
			fb.Store(fb.I(7), fb.Add(p, fb.Mul(fb.Ld(jv), fb.I(8))), 8)
		})
		fb.Ret(fb.Ld(p))
	}

	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	buf := b.Alloca("buf", 32)
	b.For("i", b.I(0), b.I(8), func(iv *ir.Instr) {
		b.Call(fill, buf)
	})
	b.Ret(b.I(0))

	res := runProver(t, m, SepCandidates{Private: set(siteOf(buf))})
	if rule, ok := res.Rule(siteOf(buf)); !ok || rule != RuleCoveredWrite {
		t.Errorf("buf should be proven via the self-covering callee, got %q ok=%v", rule, ok)
	}
}

func TestSepRedux(t *testing.T) {
	m := ir.NewModule("sep")
	g := m.NewGlobal("acc", 8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(8), func(iv *ir.Instr) {
		ga := b.Global(g)
		b.StoreF(b.FAdd(b.LoadF(ga), b.Flt(1.5)), ga)
	})
	b.Ret(b.I(0))

	res := runProver(t, m, SepCandidates{Redux: set(objOf(g))})
	if rule, ok := res.Rule(objOf(g)); !ok || rule != RuleRedux {
		t.Errorf("acc should be proven redux, got %q ok=%v", rule, ok)
	}
	if !res.ProvenFor(objOf(g), ir.HeapRedux) {
		t.Error("ProvenFor(acc, HeapRedux) should hold")
	}
}

func TestSepReduxRejectsPlainStore(t *testing.T) {
	m := ir.NewModule("sep")
	g := m.NewGlobal("acc", 8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(8), func(iv *ir.Instr) {
		ga := b.Global(g)
		b.StoreF(b.FAdd(b.LoadF(ga), b.Flt(1.5)), ga)
		b.Store(b.I(0), ga, 8) // a reset in-region breaks the reduction shape
	})
	b.Ret(b.I(0))

	res := runProver(t, m, SepCandidates{Redux: set(objOf(g))})
	if _, ok := res.Rule(objOf(g)); ok {
		t.Error("a non-reduction store must defeat the redux proof")
	}
}

func TestSepPlantForcesEntry(t *testing.T) {
	m := ir.NewModule("sep")
	g := m.NewGlobal("x", 8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(8), func(iv *ir.Instr) {
		ga := b.Global(g)
		b.Store(b.Add(b.Ld(ga), b.I(1)), ga, 8)
	})
	b.Ret(b.I(0))

	res := runProver(t, m, SepCandidates{ReadOnly: set(objOf(g))})
	if _, ok := res.Rule(objOf(g)); ok {
		t.Fatal("x is written in-region; it must not be proven")
	}
	res.Plant(objOf(g), RuleReadOnly)
	if !res.ProvenFor(objOf(g), ir.HeapReadOnly) {
		t.Error("Plant must force the claim in (the audit oracle depends on this)")
	}
}

func TestSepFullOverwrite(t *testing.T) {
	m := ir.NewModule("sep")
	g := m.NewGlobal("st", 16)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(8), func(iv *ir.Instr) {
		ga := b.Global(g)
		b.Store(b.I(1), ga, 8)
		b.Store(b.I(2), b.Add(ga, b.I(8)), 8)
		_ = b.Ld(b.Add(ga, b.I(8)))
	})
	b.Ret(b.I(0))

	res := runProver(t, m, SepCandidates{Private: set(objOf(g))})
	if !res.StaticallyPrivatized(objOf(g)) {
		t.Error("unconditional whole-object stores should qualify st for StaticallyPrivatized")
	}
}

func TestSepFullOverwriteRejectsConditionalCoverage(t *testing.T) {
	m := ir.NewModule("sep")
	g := m.NewGlobal("st", 16)
	gc := m.NewGlobal("cond", 8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(8), func(iv *ir.Instr) {
		ga := b.Global(g)
		b.Store(b.I(1), ga, 8)
		// Bytes [8,16) are rewritten only on one branch; the read inside
		// that branch is still dominated by full coverage, so the plain
		// covered-write proof holds — but iterations taking the other
		// branch leave [8,16) untouched, so whole-object install is unsound.
		b.If(b.Ld(b.Global(gc)), func() {
			b.Store(b.I(2), b.Add(ga, b.I(8)), 8)
			_ = b.Ld(b.Add(ga, b.I(8)))
		}, nil)
	})
	b.Ret(b.I(0))

	res := runProver(t, m, SepCandidates{Private: set(objOf(g))})
	if rule, ok := res.Rule(objOf(g)); !ok || rule != RuleCoveredWrite {
		t.Fatalf("st should still be proven covered-write, got %q ok=%v", rule, ok)
	}
	if res.StaticallyPrivatized(objOf(g)) {
		t.Error("conditional coverage must not qualify for StaticallyPrivatized")
	}
}

func TestSepFullOverwriteRejectsLoopAllocatedSite(t *testing.T) {
	m := ir.NewModule("sep")
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	var site *ir.Instr
	b.For("i", b.I(0), b.I(8), func(iv *ir.Instr) {
		site = b.Malloc("tmp", b.I(16))
		b.Store(b.I(1), site, 8)
		b.Store(b.I(2), b.Add(site, b.I(8)), 8)
		_ = b.Ld(site)
	})
	b.Ret(b.I(0))

	res := runProver(t, m, SepCandidates{Private: set(siteOf(site))})
	if rule, ok := res.Rule(siteOf(site)); !ok || rule != RuleCoveredWrite {
		t.Fatalf("tmp should be proven covered-write, got %q ok=%v", rule, ok)
	}
	if res.StaticallyPrivatized(siteOf(site)) {
		t.Error("a site allocated inside the region must not be wholesale-installed")
	}
}
