package analysis

import "privateer/internal/ir"

// Affine describes an address expression of the canonical form
// Base + Stride*IV + Offset, where Base is loop-invariant and IV is the
// loop's canonical induction variable. Classic DOALL dependence tests
// (and hence the paper's non-speculative baseline) can disambiguate such
// accesses across iterations.
type Affine struct {
	// Base identifies the loop-invariant component (nil when the address
	// is a pure constant plus IV multiple). Address-of-global
	// instructions are canonicalized to their *ir.Global so that distinct
	// instructions naming the same global compare equal; otherwise it is
	// the defining ir.Value.
	Base interface{}
	// Stride is the IV coefficient.
	Stride int64
	// Offset is the constant term.
	Offset int64
}

// DecomposeAffine tries to express addr as an affine function of l's
// canonical induction variable iv. It returns false when addr does not fit
// the form — pointer chasing, modulo indexing, or values loaded from memory
// inside the loop all fail here, exactly the cases that defeat static
// parallelization in the paper.
func DecomposeAffine(l *ir.Loop, iv *ir.InductionVar, addr ir.Value) (Affine, bool) {
	var walk func(v ir.Value) (Affine, bool)
	walk = func(v ir.Value) (Affine, bool) {
		if iv != nil && v == ir.Value(iv.Phi) {
			return Affine{Stride: 1}, true
		}
		in, isInstr := v.(*ir.Instr)
		if !isInstr {
			// Params are loop-invariant.
			return Affine{Base: v}, true
		}
		if in.Op == ir.OpGlobal {
			// Globals are loop-invariant wherever the address is taken;
			// canonicalize so repeated address-of instructions agree.
			return Affine{Base: in.GlobalRef}, true
		}
		if in.Op == ir.OpConst {
			return Affine{Offset: int64(in.Const)}, true
		}
		if !l.ContainsInstr(in) {
			// Defined outside the loop: loop-invariant.
			return Affine{Base: v}, true
		}
		switch in.Op {
		case ir.OpPtrToInt, ir.OpIntToPtr:
			return walk(in.Args[0])
		case ir.OpAdd, ir.OpSub:
			a, okA := walk(in.Args[0])
			b, okB := walk(in.Args[1])
			if !okA || !okB {
				return Affine{}, false
			}
			if in.Op == ir.OpSub {
				if b.Base != nil {
					return Affine{}, false // cannot negate a symbolic base
				}
				b.Stride = -b.Stride
				b.Offset = -b.Offset
			}
			if a.Base != nil && b.Base != nil {
				return Affine{}, false // at most one symbolic base
			}
			base := a.Base
			if base == nil {
				base = b.Base
			}
			return Affine{Base: base, Stride: a.Stride + b.Stride, Offset: a.Offset + b.Offset}, true
		case ir.OpMul:
			a, okA := walk(in.Args[0])
			b, okB := walk(in.Args[1])
			if !okA || !okB {
				return Affine{}, false
			}
			// One side must be a pure constant, and a symbolic base can
			// never be scaled.
			if a.Base == nil && a.Stride == 0 && b.Base == nil {
				return Affine{Stride: b.Stride * a.Offset, Offset: b.Offset * a.Offset}, true
			}
			if b.Base == nil && b.Stride == 0 && a.Base == nil {
				return Affine{Stride: a.Stride * b.Offset, Offset: a.Offset * b.Offset}, true
			}
			return Affine{}, false
		case ir.OpShl:
			a, okA := walk(in.Args[0])
			b, okB := walk(in.Args[1])
			if !okA || !okB || b.Base != nil || b.Stride != 0 || a.Base != nil {
				return Affine{}, false
			}
			return Affine{Stride: a.Stride << uint(b.Offset), Offset: a.Offset << uint(b.Offset)}, true
		}
		return Affine{}, false
	}
	a, ok := walk(addr)
	if !ok {
		return Affine{}, false
	}
	// Multiplying a symbolic base by a constant is not a valid address
	// form; walk already rejects it (see OpMul's boolean results).
	return a, true
}

// NoCarriedOverlap reports whether two affine accesses of the given sizes,
// sharing the same loop and canonical IV, provably never touch the same
// bytes in different iterations. Both must have the same symbolic base and
// the same nonzero stride; the stride must out-pace the footprint widths
// plus the offset distance, so distinct IV values map to disjoint windows.
func NoCarriedOverlap(a, b Affine, sizeA, sizeB int64) bool {
	if a.Base != b.Base || a.Stride != b.Stride || a.Stride == 0 {
		return false
	}
	stride := a.Stride
	if stride < 0 {
		stride = -stride
	}
	dc := a.Offset - b.Offset
	if dc < 0 {
		dc = -dc
	}
	maxSize := sizeA
	if sizeB > maxSize {
		maxSize = sizeB
	}
	return stride >= dc+maxSize
}
