// Command docslint fails when a package declares exported identifiers
// without doc comments. It is stricter than go vet (which does not check
// documentation at all): every exported top-level function, type, constant,
// variable, and struct field must carry a comment, because the runtime
// packages' invariants live in those comments. CI runs it over
// internal/specrt and internal/obs.
//
// Usage:
//
//	docslint ./internal/specrt ./internal/obs
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: docslint <package dir> ...")
		os.Exit(2)
	}
	findings := 0
	for _, dir := range os.Args[1:] {
		n, err := lintDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "docslint:", err)
			os.Exit(2)
		}
		findings += n
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "docslint: %d exported identifier(s) without doc comments\n", findings)
		os.Exit(1)
	}
}

// lintDir parses one package directory (tests excluded) and reports every
// undocumented exported identifier to stderr, returning the count.
func lintDir(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	findings := 0
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		fmt.Fprintf(os.Stderr, "%s:%d: exported %s %s has no doc comment\n", p.Filename, p.Line, kind, name)
		findings++
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						report(d.Pos(), "function", d.Name.Name)
					}
				case *ast.GenDecl:
					lintGenDecl(d, report)
				}
			}
		}
	}
	return findings, nil
}

// lintGenDecl checks const/var/type declarations. A doc comment on the
// enclosing group counts for its specs (the group comment documents the
// family), but exported struct fields always need their own comment or
// trailing line comment.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.IsExported() && s.Doc == nil && s.Comment == nil && d.Doc == nil {
					report(name.Pos(), strings.ToLower(d.Tok.String()), name.Name)
				}
			}
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
				report(s.Name.Pos(), "type", s.Name.Name)
			}
			if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
				for _, field := range st.Fields.List {
					if field.Doc != nil || field.Comment != nil {
						continue
					}
					for _, name := range field.Names {
						if name.IsExported() {
							report(name.Pos(), "field", s.Name.Name+"."+name.Name)
						}
					}
				}
			}
		}
	}
}
