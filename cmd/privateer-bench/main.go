// Command privateer-bench regenerates the paper's evaluation: Table 1,
// Table 3, and Figures 6-9 (see DESIGN.md's experiment index).
//
// Usage:
//
//	privateer-bench                    # everything, ref inputs (~1 minute)
//	privateer-bench -experiment fig6
//	privateer-bench -quick             # scaled-down sweep on train inputs
//	privateer-bench -programs dijkstra,enc-md5 -experiment fig7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"privateer/internal/bench"
	"privateer/internal/interp"
	"privateer/internal/obs"
	"privateer/internal/specrt"
)

func main() {
	var (
		experiment = flag.String("experiment", "all",
			"all, table1, table3, fig6, fig7, fig8, fig9, ablation, pipeline, micro, scale, elision, staticsep, obsoverhead, or service")
		input     = flag.String("input", "", "input class override: train, ref, alt, huge")
		quick     = flag.Bool("quick", false, "scaled-down configuration (train inputs)")
		programs  = flag.String("programs", "", "comma-separated subset of benchmarks")
		workers   = flag.Int("workers", 0, "machine size override for fig7/fig9")
		jsonOut   = flag.Bool("json", false, "machine-readable output (micro, pipeline, obsoverhead)")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event JSON file of the speculation lifecycle")
		eventsOut = flag.Bool("events", false, "print an event summary table after the experiment")
		serve     = flag.String("serve", "", "serve live introspection (/metrics, /vars, /spec, /debug/pprof) on this address while experiments run")
	)
	flag.Parse()
	if err := run(*experiment, *input, *quick, *programs, *workers, *jsonOut, *traceOut, *eventsOut, *serve); err != nil {
		fmt.Fprintln(os.Stderr, "privateer-bench:", err)
		os.Exit(1)
	}
}

func run(experiment, input string, quick bool, programs string, workers int, jsonOut bool, traceOut string, eventsOut bool, serve string) error {
	cfg := bench.DefaultConfig()
	if quick {
		cfg = bench.QuickConfig()
	}
	if input != "" {
		cfg.Input = input
	} else if (experiment == "scale" || experiment == "elision" || experiment == "staticsep") && !quick {
		// These experiments exist to exercise the ~100x inputs.
		cfg.Input = "huge"
	}
	if programs != "" {
		cfg.Programs = strings.Split(programs, ",")
	}
	if workers > 0 {
		cfg.FixedWorkers = workers
	}

	// Live introspection: a registry plus HTTP server observing every
	// speculative run the suite performs.
	if serve != "" {
		reg := obs.NewRegistry()
		srv := obs.NewServer(reg)
		srv.SetSpec(specrt.LatestSpec)
		bound, err := srv.Start(serve)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "privateer-bench: introspection server listening on http://%s\n", bound)
		cfg.Metrics = reg
		cfg.OpProf = interp.NewOpProfiler(interp.DefaultSampleEvery)
	}

	// Tracing: events stream into a ring collector; after the experiment the
	// retained window is exported and/or summarized.
	var collector *obs.Collector
	var tracer *obs.Tracer
	if traceOut != "" || eventsOut {
		collector = obs.NewCollector(1 << 16)
		tracer = obs.NewTracer(collector)
		cfg.Trace = tracer
		if cfg.Metrics != nil {
			collector.PublishMetrics(cfg.Metrics)
		}
	}
	finishTrace := func() error {
		if collector == nil {
			return nil
		}
		events := collector.Events()
		if dropped := collector.Dropped(); dropped > 0 {
			fmt.Fprintf(os.Stderr, "privateer-bench: trace ring overflowed; oldest %d of %d events dropped\n",
				dropped, collector.Total())
		}
		if traceOut != "" {
			f, err := os.Create(traceOut)
			if err != nil {
				return err
			}
			if err := obs.WriteChromeTrace(f, events); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "privateer-bench: wrote %d events to %s\n", len(events), traceOut)
		}
		if eventsOut {
			fmt.Println(obs.FormatSummary(events))
		}
		return nil
	}

	if experiment == "table1" {
		fmt.Println(bench.Table1())
		return nil
	}
	if experiment == "pipeline" {
		rep, err := bench.RunPipeline(cfg)
		if err != nil {
			return err
		}
		if jsonOut {
			fmt.Println(rep.JSON())
		} else {
			fmt.Println(rep.Format())
		}
		return nil
	}
	if experiment == "scale" {
		rep, err := bench.RunScale(cfg, quick)
		if err != nil {
			return err
		}
		if jsonOut {
			fmt.Println(rep.JSON())
		} else {
			fmt.Println(rep.Format())
		}
		return nil
	}
	if experiment == "elision" {
		rep, err := bench.RunElision(cfg, quick)
		if err != nil {
			return err
		}
		if jsonOut {
			fmt.Println(rep.JSON())
		} else {
			fmt.Println(rep.Format())
		}
		return nil
	}
	if experiment == "staticsep" {
		rep, err := bench.RunStaticSep(cfg, quick)
		if err != nil {
			return err
		}
		if jsonOut {
			fmt.Println(rep.JSON())
		} else {
			fmt.Println(rep.Format())
		}
		return nil
	}
	if experiment == "micro" {
		rep, err := bench.RunMicroTraced(tracer)
		if err != nil {
			return err
		}
		if jsonOut {
			fmt.Println(rep.JSON())
		} else {
			fmt.Println(rep.Format())
		}
		return finishTrace()
	}
	if experiment == "service" {
		rep, err := bench.RunService(cfg, quick)
		if err != nil {
			return err
		}
		if jsonOut {
			fmt.Println(rep.JSON())
		} else {
			fmt.Println(rep.Format())
		}
		return nil
	}
	if experiment == "obsoverhead" {
		rep, err := bench.RunObsOverhead()
		if err != nil {
			return err
		}
		if jsonOut {
			fmt.Println(rep.JSON())
		} else {
			fmt.Println(rep.Format())
		}
		return nil
	}
	suite, err := bench.NewSuite(cfg)
	if err != nil {
		return err
	}
	defer func() {
		if err := finishTrace(); err != nil {
			fmt.Fprintln(os.Stderr, "privateer-bench: trace:", err)
		}
	}()
	switch experiment {
	case "all":
		out, err := suite.All()
		fmt.Println(out)
		return err
	case "table3":
		r, err := suite.Table3()
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "fig6":
		r, err := suite.Fig6()
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "fig7":
		r, err := suite.Fig7()
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "fig8":
		r, err := suite.Fig8()
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "fig9":
		r, err := suite.Fig9()
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
	case "ablation":
		cp, err := suite.AblationCheckpointPeriod("dijkstra",
			[]int64{1, 2, 4, 8, 16, 32, 64}, 0.03)
		if err != nil {
			return err
		}
		fmt.Println(cp.Format())
		el, err := bench.AblationElision(cfg)
		if err != nil {
			return err
		}
		fmt.Println(el.Format())
		vp, err := bench.AblationValuePrediction(cfg)
		if err != nil {
			return err
		}
		fmt.Println(vp.Format())
	default:
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return nil
}
