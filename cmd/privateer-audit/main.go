// Command privateer-audit cross-examines the static separation prover on a
// benchmark: every compile-time privatization/read-only/reduction proof is
// re-derived independently, checked against a fresh profile of the same
// input, and monitored at runtime by the SepAudit oracle while the
// transformed program executes. Any claim a single oracle contradicts makes
// the command exit nonzero with a loud report.
//
// The -plant flag injects deliberately unsound proofs (the same knob as
// core.Options.PlantProofs) so the oracle chain itself can be exercised:
//
//	privateer-audit -prog dijkstra -input ref
//	privateer-audit -prog all -input train
//	privateer-audit -prog enc-md5 -plant '@digest=readonly'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"privateer/internal/audit"
	"privateer/internal/core"
	"privateer/internal/ir"
	"privateer/internal/progs"
	"privateer/internal/specrt"
)

func main() {
	var (
		progName = flag.String("prog", "all", "benchmark name, or \"all\"")
		input    = flag.String("input", "train", "input class: train, ref, alt, huge")
		workers  = flag.Int("workers", 4, "speculative worker count for the audited run")
		plant    = flag.String("plant", "", "comma-separated obj=rule pairs of proofs to plant (e.g. '@cfg=readonly')")
		asJSON   = flag.Bool("json", false, "emit the audit reports as JSON")
	)
	flag.Parse()
	if err := run(*progName, *input, *workers, *plant, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "privateer-audit:", err)
		os.Exit(1)
	}
}

// parsePlants turns the -plant flag value into core.Options.PlantProofs.
func parsePlants(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]string{}
	for _, pair := range strings.Split(s, ",") {
		obj, rule, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || obj == "" || rule == "" {
			return nil, fmt.Errorf("bad -plant entry %q (want obj=rule)", pair)
		}
		out[obj] = rule
	}
	return out, nil
}

func run(progName, input string, workers int, plant string, asJSON bool) error {
	plants, err := parsePlants(plant)
	if err != nil {
		return err
	}
	var targets []*progs.Program
	if progName == "all" {
		targets = progs.All()
	} else {
		p := progs.ByName(progName)
		if p == nil {
			return fmt.Errorf("unknown program %q", progName)
		}
		targets = []*progs.Program{p}
	}

	failed := false
	reports := map[string]*audit.Report{}
	for _, p := range targets {
		var in progs.Input
		switch input {
		case "train":
			in = p.Train
		case "ref":
			in = p.Ref
		case "alt":
			in = p.Alt
		case "huge":
			in = p.Huge
		default:
			return fmt.Errorf("unknown input class %q", input)
		}
		build := func() *ir.Module { return p.Build(in) }
		rep, err := audit.Run(build,
			core.Options{PlantProofs: plants},
			specrt.Config{Workers: workers})
		if err != nil {
			return fmt.Errorf("%s: %w", p.Name, err)
		}
		reports[p.Name] = rep
		if !asJSON {
			fmt.Printf("== %s (%s) ==\n%s", p.Name, in, rep.Format())
		}
		if !rep.OK() {
			failed = true
		}
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
	}
	if failed {
		return fmt.Errorf("static separation claims contradicted by the dynamic oracle")
	}
	return nil
}
