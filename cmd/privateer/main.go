// Command privateer runs one of the benchmark programs through the full
// Privateer pipeline — profile, classify, select, transform, DOALL — and
// executes it under the speculative runtime, reporting the heap assignment,
// runtime statistics and simulated speedup over the best sequential
// execution.
//
// Usage:
//
//	privateer -prog dijkstra -workers 8
//	privateer -prog blackscholes -workers 24 -input ref -misspec 0.01
//	privateer -prog enc-md5 -mode doall      # the non-speculative baseline
//	privateer -prog swaptions -mode seq      # plain sequential execution
//	privateer -mode serve -serve :6060       # multi-tenant region service
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"privateer/internal/core"
	"privateer/internal/interp"
	"privateer/internal/ir"
	"privateer/internal/obs"
	"privateer/internal/progs"
	"privateer/internal/service"
	"privateer/internal/specrt"
	"privateer/internal/vm"
)

// obsState holds the live-introspection wiring when -serve is given: the
// metrics registry and opcode profiler threaded into the speculative
// runtime, plus the HTTP server exposing them.
type obsState struct {
	reg  *obs.Registry
	prof *interp.OpProfiler
	srv  *obs.Server
}

// serving is the process-wide introspection state (nil without -serve).
var serving *obsState

// whyMisspec enables the post-run misspeculation-attribution report.
var whyMisspec bool

// startServe brings up the introspection HTTP server on addr and prints the
// bound address to stderr (addr may use port 0 for an ephemeral port).
func startServe(addr string) error {
	reg := obs.NewRegistry()
	srv := obs.NewServer(reg)
	srv.SetSpec(specrt.LatestSpec)
	bound, err := srv.Start(addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "privateer: introspection server listening on http://%s\n", bound)
	serving = &obsState{
		reg:  reg,
		prof: interp.NewOpProfiler(interp.DefaultSampleEvery),
		srv:  srv,
	}
	return nil
}

// specConfig builds the runtime configuration, overlaying the introspection
// registry and profiler when -serve is active.
func specConfig(workers int, misspec float64, seed uint64, period int64) specrt.Config {
	cfg := specrt.Config{
		Workers: workers, MisspecRate: misspec, Seed: seed, CheckpointPeriod: period,
	}
	if serving != nil {
		cfg.Metrics = serving.reg
		cfg.OpProf = serving.prof
	}
	return cfg
}

// postRun emits the optional attribution report and, with -serve, keeps the
// process alive so the introspection endpoints stay scrapable after the run.
func postRun(rt *specrt.RT) {
	if whyMisspec && rt != nil {
		fmt.Print(specrt.FormatMisspecSites(rt.MisspecSites()))
	}
	if serving != nil {
		fmt.Fprintln(os.Stderr, "privateer: run complete; serving until interrupted")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
		serving.srv.Close()
	}
}

func main() {
	var (
		progName = flag.String("prog", "dijkstra", "benchmark: "+names())
		irFile   = flag.String("irfile", "", "run a textual-IR module from a file instead of a named benchmark")
		runArgs  = flag.String("args", "", "comma-separated integer arguments for -irfile programs")
		input    = flag.String("input", "ref", "input class: train, ref, alt, huge")
		workers  = flag.Int("workers", 8, "worker process count")
		mode     = flag.String("mode", "privateer", "privateer, doall, seq, or serve")
		misspec  = flag.Float64("misspec", 0, "injected misspeculation rate per iteration")
		seed     = flag.Uint64("seed", 0xC0FFEE, "injection seed")
		period   = flag.Int64("checkpoint", 0, "checkpoint period in iterations (0 = auto)")
		optimize = flag.Bool("O", false, "run the mid-end optimizer before profiling")
		showOut  = flag.Bool("output", false, "print the program's output")
		quiet    = flag.Bool("quiet", false, "suppress the pipeline summary")
		serve    = flag.String("serve", "", "serve live introspection (/metrics, /vars, /spec, /debug/pprof) on this address, e.g. :6060")
		whyMiss  = flag.Bool("why-misspec", false, "after the run, print misspeculations attributed to allocation sites")

		// Region-service tuning (only with -mode serve).
		queueDepth  = flag.Int("queue-depth", service.DefaultQueueDepth, "serve: bounded job-queue depth before backpressure")
		concurrency = flag.Int("concurrency", service.DefaultConcurrency, "serve: concurrent region invocations")
		tenantQuota = flag.Int("tenant-quota", 0, "serve: max inflight jobs per tenant (0 = unlimited)")
		poolSlots   = flag.Int("pool-slots", specrt.DefaultPoolSlots, "serve: warmed worker spaces retained per program")
		traceCap    = flag.Int("trace-capacity", 0, "serve: per-job trace ring capacity in events (0 = default, negative disables tracing)")
		flightCap   = flag.Int("flight-entries", 0, "serve: postmortems retained by the flight recorder (0 = default)")
	)
	flag.Parse()
	buildHook = *optimize
	whyMisspec = *whyMiss
	if *mode == "serve" {
		if err := runService(*serve, *workers, *queueDepth, *concurrency,
			*tenantQuota, *poolSlots, *traceCap, *flightCap, *misspec, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "privateer:", err)
			os.Exit(1)
		}
		return
	}
	if *serve != "" {
		if err := startServe(*serve); err != nil {
			fmt.Fprintln(os.Stderr, "privateer:", err)
			os.Exit(1)
		}
	}
	var err error
	if *irFile != "" {
		err = runIRFile(*irFile, *runArgs, *workers, *misspec, *seed, *period, *showOut, *quiet)
	} else {
		err = run(*progName, *input, *workers, *mode, *misspec, *seed, *period, *showOut, *quiet)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "privateer:", err)
		os.Exit(1)
	}
}

// runService runs the process as a long-lived multi-tenant region service:
// the submit/poll API and the introspection endpoints share one listener,
// and SIGINT/SIGTERM triggers a graceful drain before exit.
func runService(addr string, workers, queueDepth, concurrency, tenantQuota,
	poolSlots, traceCap, flightCap int, misspec float64, seed uint64) error {
	if addr == "" {
		addr = ":6060"
	}
	reg := obs.NewRegistry()
	srv := obs.NewServer(reg)
	srv.SetSpec(specrt.LatestSpec)
	svc := service.New(service.Config{
		Workers:        workers,
		Concurrency:    concurrency,
		QueueDepth:     queueDepth,
		TenantInflight: tenantQuota,
		PoolSlots:      poolSlots,
		Metrics:        reg,
		TraceCapacity:  traceCap,
		FlightEntries:  flightCap,
		MisspecRate:    misspec,
		Seed:           seed,
	})
	svc.Mount(srv)
	bound, err := srv.Start(addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "privateer: region service listening on http://%s\n", bound)
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	fmt.Fprintln(os.Stderr, "privateer: draining region service")
	svc.Drain()
	return srv.Close()
}

// runIRFile parses a textual-IR module, parallelizes it automatically and
// runs it speculatively, comparing against its own sequential execution.
func runIRFile(path, argList string, workers int, misspec float64,
	seed uint64, period int64, showOut, quiet bool) error {
	text, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var args []uint64
	if argList != "" {
		for _, tok := range strings.Split(argList, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(tok), 10, 64)
			if err != nil {
				return fmt.Errorf("bad -args element %q: %w", tok, err)
			}
			args = append(args, v)
		}
	}
	// Sequential baseline (a fresh parse: the pipeline mutates modules).
	seqMod, err := ir.Parse(string(text))
	if err != nil {
		return err
	}
	seqIt := interp.New(seqMod, vm.NewAddressSpace())
	seqVal, err := seqIt.Run(args...)
	if err != nil {
		return fmt.Errorf("sequential run: %w", err)
	}
	fmt.Printf("sequential: result %d, %d interpreted instructions\n", int64(seqVal), seqIt.Steps)

	mod, err := ir.Parse(string(text))
	if err != nil {
		return err
	}
	par, err := core.Parallelize(mod, core.Options{TrainArgs: args})
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Print(par.Summary())
	}
	if len(par.Regions) == 0 {
		fmt.Println("nothing parallelized; sequential result stands")
		if showOut {
			fmt.Print(seqIt.Out.String())
		}
		return nil
	}
	rt, got, err := core.Run(par, specConfig(workers, misspec, seed, period), args...)
	if err != nil {
		return err
	}
	match := "MATCHES"
	if got != seqVal {
		match = "DIFFERS FROM"
	}
	st := rt.Stats.Snapshot()
	fmt.Printf("parallel: result %d (%s sequential), %d misspeculations, speedup %.2fx\n",
		int64(got), match, st.Misspecs, float64(seqIt.Steps)/float64(rt.Sim.Time()))
	if showOut {
		fmt.Print(rt.Output())
	}
	postRun(rt)
	return nil
}

// buildHook enables ir.OptimizeModule on freshly built modules.
var buildHook bool

// build constructs (and optionally optimizes) a benchmark module.
func build(p *progs.Program, in progs.Input) *ir.Module {
	m := p.Build(in)
	if buildHook {
		ir.OptimizeModule(m)
	}
	return m
}

func names() string {
	var ns []string
	for _, p := range progs.All() {
		ns = append(ns, p.Name)
	}
	return strings.Join(ns, ", ")
}

func inputFor(p *progs.Program, name string) (progs.Input, error) {
	switch name {
	case "train":
		return p.Train, nil
	case "ref":
		return p.Ref, nil
	case "alt":
		return p.Alt, nil
	case "huge":
		return p.Huge, nil
	default:
		return progs.Input{}, fmt.Errorf("unknown input class %q", name)
	}
}

func run(progName, input string, workers int, mode string, misspec float64,
	seed uint64, period int64, showOut, quiet bool) error {
	p := progs.ByName(progName)
	if p == nil {
		return fmt.Errorf("unknown program %q (have: %s)", progName, names())
	}
	in, err := inputFor(p, input)
	if err != nil {
		return err
	}
	fmt.Printf("program %s, input %s\n", p.Name, in)

	// Best sequential execution for the speedup baseline.
	seqIt := interp.New(build(p, in), vm.NewAddressSpace())
	if _, err := seqIt.Run(); err != nil {
		return fmt.Errorf("sequential run: %w", err)
	}
	fmt.Printf("sequential: %d interpreted instructions\n", seqIt.Steps)

	switch mode {
	case "seq":
		if showOut {
			fmt.Print(seqIt.Out.String())
		}
		postRun(nil)
		return nil
	case "doall":
		static, err := core.ParallelizeStatic(build(p, in), core.Options{})
		if err != nil {
			return err
		}
		if !quiet {
			for _, r := range static.Reports {
				status := "selected"
				if !r.Selected {
					status = "rejected: " + r.Reason
				}
				fmt.Printf("  loop %-26s %s\n", r.Loop, status)
			}
		}
		runRes, err := core.RunStatic(static, workers)
		if err != nil {
			return err
		}
		fmt.Printf("DOALL-only: %d loops, %d invocations, simulated time %d, speedup %.2fx\n",
			len(static.Regions), runRes.Baseline.Stats.Invocations,
			runRes.SimTime(), float64(seqIt.Steps)/float64(runRes.SimTime()))
		if showOut {
			fmt.Print(runRes.Output)
		}
		postRun(nil)
		return nil
	case "privateer":
		par, err := core.Parallelize(build(p, in), core.Options{})
		if err != nil {
			return err
		}
		if !quiet {
			fmt.Print(par.Summary())
		}
		rt, _, err := core.Run(par, specConfig(workers, misspec, seed, period))
		if err != nil {
			return err
		}
		st := rt.Stats.Snapshot()
		fmt.Printf("privateer: %d workers, %d invocations, %d checkpoints, "+
			"%d misspeculations, %d recoveries\n",
			workers, st.Invocations, st.Checkpoints, st.Misspecs, st.Recoveries)
		fmt.Printf("privacy: %d reads (%d B), %d writes (%d B); %d separation checks; %d predictions\n",
			st.PrivReadChecks, st.PrivReadBytes, st.PrivWriteChecks, st.PrivWriteBytes,
			st.SeparationChecks, st.Predictions)
		fmt.Printf("simulated time %d, speedup %.2fx\n",
			rt.Sim.Time(), float64(seqIt.Steps)/float64(rt.Sim.Time()))
		if showOut {
			fmt.Print(rt.Output())
		}
		postRun(rt)
		return nil
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
}
