// Command privateer runs one of the benchmark programs through the full
// Privateer pipeline — profile, classify, select, transform, DOALL — and
// executes it under the speculative runtime, reporting the heap assignment,
// runtime statistics and simulated speedup over the best sequential
// execution.
//
// Usage:
//
//	privateer -prog dijkstra -workers 8
//	privateer -prog blackscholes -workers 24 -input ref -misspec 0.01
//	privateer -prog enc-md5 -mode doall      # the non-speculative baseline
//	privateer -prog swaptions -mode seq      # plain sequential execution
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"privateer/internal/core"
	"privateer/internal/interp"
	"privateer/internal/ir"
	"privateer/internal/progs"
	"privateer/internal/specrt"
	"privateer/internal/vm"
)

func main() {
	var (
		progName = flag.String("prog", "dijkstra", "benchmark: "+names())
		irFile   = flag.String("irfile", "", "run a textual-IR module from a file instead of a named benchmark")
		runArgs  = flag.String("args", "", "comma-separated integer arguments for -irfile programs")
		input    = flag.String("input", "ref", "input class: train, ref, alt")
		workers  = flag.Int("workers", 8, "worker process count")
		mode     = flag.String("mode", "privateer", "privateer, doall, or seq")
		misspec  = flag.Float64("misspec", 0, "injected misspeculation rate per iteration")
		seed     = flag.Uint64("seed", 0xC0FFEE, "injection seed")
		period   = flag.Int64("checkpoint", 0, "checkpoint period in iterations (0 = auto)")
		optimize = flag.Bool("O", false, "run the mid-end optimizer before profiling")
		showOut  = flag.Bool("output", false, "print the program's output")
		quiet    = flag.Bool("quiet", false, "suppress the pipeline summary")
	)
	flag.Parse()
	buildHook = *optimize
	var err error
	if *irFile != "" {
		err = runIRFile(*irFile, *runArgs, *workers, *misspec, *seed, *period, *showOut, *quiet)
	} else {
		err = run(*progName, *input, *workers, *mode, *misspec, *seed, *period, *showOut, *quiet)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "privateer:", err)
		os.Exit(1)
	}
}

// runIRFile parses a textual-IR module, parallelizes it automatically and
// runs it speculatively, comparing against its own sequential execution.
func runIRFile(path, argList string, workers int, misspec float64,
	seed uint64, period int64, showOut, quiet bool) error {
	text, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var args []uint64
	if argList != "" {
		for _, tok := range strings.Split(argList, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(tok), 10, 64)
			if err != nil {
				return fmt.Errorf("bad -args element %q: %w", tok, err)
			}
			args = append(args, v)
		}
	}
	// Sequential baseline (a fresh parse: the pipeline mutates modules).
	seqMod, err := ir.Parse(string(text))
	if err != nil {
		return err
	}
	seqIt := interp.New(seqMod, vm.NewAddressSpace())
	seqVal, err := seqIt.Run(args...)
	if err != nil {
		return fmt.Errorf("sequential run: %w", err)
	}
	fmt.Printf("sequential: result %d, %d interpreted instructions\n", int64(seqVal), seqIt.Steps)

	mod, err := ir.Parse(string(text))
	if err != nil {
		return err
	}
	par, err := core.Parallelize(mod, core.Options{TrainArgs: args})
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Print(par.Summary())
	}
	if len(par.Regions) == 0 {
		fmt.Println("nothing parallelized; sequential result stands")
		if showOut {
			fmt.Print(seqIt.Out.String())
		}
		return nil
	}
	rt, got, err := core.Run(par, specrt.Config{
		Workers: workers, MisspecRate: misspec, Seed: seed, CheckpointPeriod: period,
	}, args...)
	if err != nil {
		return err
	}
	match := "MATCHES"
	if got != seqVal {
		match = "DIFFERS FROM"
	}
	fmt.Printf("parallel: result %d (%s sequential), %d misspeculations, speedup %.2fx\n",
		int64(got), match, rt.Stats.Misspecs, float64(seqIt.Steps)/float64(rt.Sim.Time()))
	if showOut {
		fmt.Print(rt.Output())
	}
	return nil
}

// buildHook enables ir.OptimizeModule on freshly built modules.
var buildHook bool

// build constructs (and optionally optimizes) a benchmark module.
func build(p *progs.Program, in progs.Input) *ir.Module {
	m := p.Build(in)
	if buildHook {
		ir.OptimizeModule(m)
	}
	return m
}

func names() string {
	var ns []string
	for _, p := range progs.All() {
		ns = append(ns, p.Name)
	}
	return strings.Join(ns, ", ")
}

func inputFor(p *progs.Program, name string) (progs.Input, error) {
	switch name {
	case "train":
		return p.Train, nil
	case "ref":
		return p.Ref, nil
	case "alt":
		return p.Alt, nil
	default:
		return progs.Input{}, fmt.Errorf("unknown input class %q", name)
	}
}

func run(progName, input string, workers int, mode string, misspec float64,
	seed uint64, period int64, showOut, quiet bool) error {
	p := progs.ByName(progName)
	if p == nil {
		return fmt.Errorf("unknown program %q (have: %s)", progName, names())
	}
	in, err := inputFor(p, input)
	if err != nil {
		return err
	}
	fmt.Printf("program %s, input %s\n", p.Name, in)

	// Best sequential execution for the speedup baseline.
	seqIt := interp.New(build(p, in), vm.NewAddressSpace())
	if _, err := seqIt.Run(); err != nil {
		return fmt.Errorf("sequential run: %w", err)
	}
	fmt.Printf("sequential: %d interpreted instructions\n", seqIt.Steps)

	switch mode {
	case "seq":
		if showOut {
			fmt.Print(seqIt.Out.String())
		}
		return nil
	case "doall":
		static, err := core.ParallelizeStatic(build(p, in), core.Options{})
		if err != nil {
			return err
		}
		if !quiet {
			for _, r := range static.Reports {
				status := "selected"
				if !r.Selected {
					status = "rejected: " + r.Reason
				}
				fmt.Printf("  loop %-26s %s\n", r.Loop, status)
			}
		}
		runRes, err := core.RunStatic(static, workers)
		if err != nil {
			return err
		}
		fmt.Printf("DOALL-only: %d loops, %d invocations, simulated time %d, speedup %.2fx\n",
			len(static.Regions), runRes.Baseline.Stats.Invocations,
			runRes.SimTime(), float64(seqIt.Steps)/float64(runRes.SimTime()))
		if showOut {
			fmt.Print(runRes.Output)
		}
		return nil
	case "privateer":
		par, err := core.Parallelize(build(p, in), core.Options{})
		if err != nil {
			return err
		}
		if !quiet {
			fmt.Print(par.Summary())
		}
		rt, _, err := core.Run(par, specrt.Config{
			Workers: workers, MisspecRate: misspec, Seed: seed, CheckpointPeriod: period,
		})
		if err != nil {
			return err
		}
		st := rt.Stats
		fmt.Printf("privateer: %d workers, %d invocations, %d checkpoints, "+
			"%d misspeculations, %d recoveries\n",
			workers, st.Invocations, st.Checkpoints, st.Misspecs, st.Recoveries)
		fmt.Printf("privacy: %d reads (%d B), %d writes (%d B); %d separation checks; %d predictions\n",
			st.PrivReadChecks, st.PrivReadBytes, st.PrivWriteChecks, st.PrivWriteBytes,
			st.SeparationChecks, st.Predictions)
		fmt.Printf("simulated time %d, speedup %.2fx\n",
			rt.Sim.Time(), float64(seqIt.Steps)/float64(rt.Sim.Time()))
		if showOut {
			fmt.Print(rt.Output())
		}
		return nil
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
}
