// Command privateer-dump exposes the compiler's intermediate artifacts for
// one benchmark: the training profile's hot loops, the heap assignment
// (the paper's Figure 4), the speculation plan, and the IR before and after
// the privatizing transformation (the paper's Figure 2).
//
// Usage:
//
//	privateer-dump -prog dijkstra -heaps
//	privateer-dump -prog dijkstra -ir
//	privateer-dump -prog enc-md5 -profile
//	privateer-dump -prog enc-md5 -input huge -pagetable
//	privateer-dump -prog enc-md5 -sep
//	privateer-dump -flight -addr 127.0.0.1:6060
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"privateer/internal/core"
	"privateer/internal/interp"
	"privateer/internal/ir"
	"privateer/internal/obs"
	"privateer/internal/profiling"
	"privateer/internal/progs"
	"privateer/internal/vm"
)

func main() {
	var (
		progName = flag.String("prog", "dijkstra", "benchmark name")
		input    = flag.String("input", "train", "input class: train, ref, alt, huge")
		showIR   = flag.Bool("ir", false, "dump IR before and after transformation")
		outFile  = flag.String("o", "", "write the untransformed textual IR to a file (runnable via privateer -irfile)")
		heaps    = flag.Bool("heaps", false, "dump the heap assignment (Figure 4)")
		profile  = flag.Bool("profile", false, "dump hot loops and carried dependences")
		ptable   = flag.Bool("pagetable", false, "run the program sequentially and dump radix page-table occupancy and dirty-summary stats")
		elision  = flag.Bool("elision", false, "dump the postprocess pass's per-category elision & promotion counters")
		sep      = flag.Bool("sep", false, "dump the static separation prover's per-region proofs and discharged-machinery counters")
		flight   = flag.Bool("flight", false, "fetch and pretty-print a running region service's flight recorder (/debug/flight)")
		addr     = flag.String("addr", "127.0.0.1:6060", "region service address for -flight")
	)
	flag.Parse()
	if *flight {
		if err := dumpFlight(*addr); err != nil {
			fmt.Fprintln(os.Stderr, "privateer-dump:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*progName, *input, *showIR, *heaps, *profile, *ptable, *elision, *sep, *outFile); err != nil {
		fmt.Fprintln(os.Stderr, "privateer-dump:", err)
		os.Exit(1)
	}
}

// dumpFlight fetches a running service's /debug/flight document and prints
// a postmortem digest: one header line per capture plus its attribution
// rows and phase breakdown.
func dumpFlight(addr string) error {
	cl := &http.Client{Timeout: 10 * time.Second}
	resp, err := cl.Get("http://" + addr + "/debug/flight")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /debug/flight: %s", resp.Status)
	}
	var st obs.FlightState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("decoding /debug/flight: %w", err)
	}
	fmt.Printf("flight recorder at %s: %d recorded, %d retained (capacity %d)\n",
		addr, st.Total, st.Retained, st.Capacity)
	for reason, n := range st.ByReason {
		fmt.Printf("  %-10s %d\n", reason, n)
	}
	for _, pm := range st.Postmortems {
		id := pm.JobID
		if id == "" {
			id = "(not admitted)"
		}
		fmt.Printf("\n%s  %s  tenant=%s prog=%s/%s  at %s\n",
			id, pm.Reason, pm.Tenant, pm.Prog, pm.Input,
			time.Unix(0, pm.UnixNS).Format(time.RFC3339))
		if pm.Error != "" {
			fmt.Printf("  error: %s\n", pm.Error)
		}
		if pm.Misspecs > 0 || pm.Fallbacks > 0 {
			fmt.Printf("  misspecs %d, sequential fallbacks %d\n", pm.Misspecs, pm.Fallbacks)
		}
		for _, at := range pm.Attribution {
			fmt.Printf("  x%-6d %-24s %s", at.Count, at.Cause, at.Region)
			if at.Object != "" {
				fmt.Printf("  object %s", at.Object)
			}
			if at.Site != "" {
				fmt.Printf("  @ %s", at.Site)
			}
			fmt.Println()
		}
		for _, ps := range pm.Phases {
			fmt.Printf("  phase %-10s %8.3f ms  (%d events)\n",
				ps.Phase, float64(ps.NS)/1e6, ps.Count)
		}
		fmt.Printf("  events captured %d of %d emitted (%d dropped by the ring)\n",
			len(pm.Events), pm.TotalEvents, pm.DroppedEvents)
	}
	return nil
}

// dumpPageTable runs p sequentially and prints the resulting address
// space's radix occupancy: node counts, per-heap resident pages, and the
// dirty-summary state, plus the memory-system counters the run accumulated.
func dumpPageTable(p *progs.Program, in progs.Input) error {
	it := interp.New(p.Build(in), vm.NewAddressSpace())
	if _, err := it.Run(); err != nil {
		return fmt.Errorf("sequential run: %w", err)
	}
	pt := it.AS.PageTable()
	fmt.Printf("page table of %s (%s): %d levels x %d-way radix\n",
		p.Name, in, pt.Levels, pt.Fanout)
	fmt.Printf("  nodes %d (%d owned), resident pages %d, dirty pages %d\n",
		pt.Nodes, pt.OwnedNodes, pt.ResidentPages, pt.DirtyPages)
	occupancy := float64(pt.ResidentPages) / float64(pt.Nodes*int64(pt.Fanout))
	fmt.Printf("  leaf-slot occupancy %.1f%% (resident pages / node slots)\n", 100*occupancy)
	for h := ir.HeapKind(0); h < ir.NumHeaps; h++ {
		if n := pt.HeapResident[h]; n > 0 {
			fmt.Printf("  heap %-12s %6d pages (%d KiB)\n", h, n, n*vm.PageSize/1024)
		}
	}
	s := it.AS.Stats
	fmt.Printf("  counters: %d pages mapped, %d pages copied, %d nodes copied, %d summary hits\n",
		s.PagesMapped, s.PagesCopied, s.NodesCopied, s.SummaryHits)
	return nil
}

func run(progName, input string, showIR, heaps, profile, ptable, elision, sep bool, outFile string) error {
	p := progs.ByName(progName)
	if p == nil {
		return fmt.Errorf("unknown program %q", progName)
	}
	var in progs.Input
	switch input {
	case "train":
		in = p.Train
	case "ref":
		in = p.Ref
	case "alt":
		in = p.Alt
	case "huge":
		in = p.Huge
	default:
		return fmt.Errorf("unknown input class %q", input)
	}
	if outFile != "" {
		if err := os.WriteFile(outFile, []byte(ir.FormatModule(p.Build(in))), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%s, %s input)\n", outFile, p.Name, in)
		if !showIR && !heaps && !profile && !ptable && !elision && !sep {
			return nil
		}
	}
	if !showIR && !heaps && !profile && !ptable && !elision && !sep {
		heaps = true // default view
	}

	if ptable {
		if err := dumpPageTable(p, in); err != nil {
			return err
		}
		fmt.Println()
	}

	if profile {
		prof, err := profiling.Run(p.Build(in))
		if err != nil {
			return err
		}
		fmt.Printf("profile of %s (%s): %d dynamic instructions\n", p.Name, in, prof.Steps)
		for _, li := range prof.HotLoops() {
			fmt.Printf("  loop %-28s invocations=%-6d iterations=%-8d steps=%d\n",
				li.Loop, li.Invocations, li.Iterations, li.Steps)
			for _, d := range prof.CarriedFlow[li.Loop] {
				fmt.Printf("    carried flow via %-18s x%-8d %s -> %s\n",
					d.Object, d.Count, d.Src.Format(), d.Dst.Format())
			}
		}
		fmt.Println()
	}

	if !showIR && !heaps && !elision && !sep {
		return nil
	}
	var before string
	if showIR {
		before = ir.FormatModule(p.Build(in))
	}
	par, err := core.Parallelize(p.Build(in), core.Options{})
	if err != nil {
		return err
	}
	if heaps {
		fmt.Print(par.Summary())
		for _, ri := range par.Regions {
			fmt.Printf("\npredicted locations:\n")
			for _, pl := range ri.Assign.Predictions {
				fmt.Printf("  @%s+%d (%d bytes) == %#x\n",
					pl.Global.Name, pl.Offset, pl.Size, pl.Value)
			}
			st := ri.TStats
			fmt.Printf("transformation: %d separation checks (+%d elided), "+
				"%d/%d privacy read/write checks, %d redux marks, %d predictions, %d cold guards\n",
				st.SeparationChecks, st.SeparationElided,
				st.PrivacyReads, st.PrivacyWrites, st.ReduxMarks, st.Predicts, st.ColdGuards)
		}
	}
	if elision {
		fmt.Printf("postprocess pass of %s (%s):\n", p.Name, in)
		for _, ri := range par.Regions {
			st := ri.TStats
			fmt.Printf("  region %s:\n", ri.Outline.LoopName)
			fmt.Printf("    joined        %6d  (adjacent checks folded into spans)\n", st.Joined)
			fmt.Printf("    eliminated    %6d  (dominated by an equal-address check)\n", st.Eliminated)
			fmt.Printf("    invariant     %6d  (loop-invariant checks hoisted)\n", st.InvPromoted)
			fmt.Printf("    dense         %6d  (affine unit-stride checks promoted to spans)\n", st.DensePromoted)
			fmt.Printf("    sparse        %6d  (affine strided checks promoted to spans)\n", st.SparsePromoted)
			fmt.Printf("    redundant-uo  %6d  (separation checks on a checked underlying object)\n", st.HeapRedundantUO)
			fmt.Printf("    sites: %s\n", st.SitesSummary())
		}
	}
	if sep {
		fmt.Printf("static separation proofs of %s (%s):\n", p.Name, in)
		for _, ri := range par.Regions {
			fmt.Printf("  region %s:\n", ri.Outline.LoopName)
			if ri.Assign.Sep == nil {
				fmt.Println("    (prover did not run)")
				continue
			}
			for _, line := range strings.Split(strings.TrimRight(ri.Assign.Sep.Summary(), "\n"), "\n") {
				fmt.Printf("    %s\n", line)
			}
			fmt.Printf("    %s\n", ri.TStats.SepSummary())
		}
	}
	if showIR {
		fmt.Println("==== IR before transformation ====")
		fmt.Println(before)
		fmt.Println("==== IR after transformation and outlining ====")
		fmt.Println(ir.FormatModule(par.Mod))
	}
	return nil
}
