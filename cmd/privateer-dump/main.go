// Command privateer-dump exposes the compiler's intermediate artifacts for
// one benchmark: the training profile's hot loops, the heap assignment
// (the paper's Figure 4), the speculation plan, and the IR before and after
// the privatizing transformation (the paper's Figure 2).
//
// Usage:
//
//	privateer-dump -prog dijkstra -heaps
//	privateer-dump -prog dijkstra -ir
//	privateer-dump -prog enc-md5 -profile
package main

import (
	"flag"
	"fmt"
	"os"

	"privateer/internal/core"
	"privateer/internal/ir"
	"privateer/internal/profiling"
	"privateer/internal/progs"
)

func main() {
	var (
		progName = flag.String("prog", "dijkstra", "benchmark name")
		input    = flag.String("input", "train", "input class: train, ref, alt")
		showIR   = flag.Bool("ir", false, "dump IR before and after transformation")
		outFile  = flag.String("o", "", "write the untransformed textual IR to a file (runnable via privateer -irfile)")
		heaps    = flag.Bool("heaps", false, "dump the heap assignment (Figure 4)")
		profile  = flag.Bool("profile", false, "dump hot loops and carried dependences")
	)
	flag.Parse()
	if err := run(*progName, *input, *showIR, *heaps, *profile, *outFile); err != nil {
		fmt.Fprintln(os.Stderr, "privateer-dump:", err)
		os.Exit(1)
	}
}

func run(progName, input string, showIR, heaps, profile bool, outFile string) error {
	p := progs.ByName(progName)
	if p == nil {
		return fmt.Errorf("unknown program %q", progName)
	}
	var in progs.Input
	switch input {
	case "train":
		in = p.Train
	case "ref":
		in = p.Ref
	case "alt":
		in = p.Alt
	default:
		return fmt.Errorf("unknown input class %q", input)
	}
	if outFile != "" {
		if err := os.WriteFile(outFile, []byte(ir.FormatModule(p.Build(in))), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%s, %s input)\n", outFile, p.Name, in)
		if !showIR && !heaps && !profile {
			return nil
		}
	}
	if !showIR && !heaps && !profile {
		heaps = true // default view
	}

	if profile {
		prof, err := profiling.Run(p.Build(in))
		if err != nil {
			return err
		}
		fmt.Printf("profile of %s (%s): %d dynamic instructions\n", p.Name, in, prof.Steps)
		for _, li := range prof.HotLoops() {
			fmt.Printf("  loop %-28s invocations=%-6d iterations=%-8d steps=%d\n",
				li.Loop, li.Invocations, li.Iterations, li.Steps)
			for _, d := range prof.CarriedFlow[li.Loop] {
				fmt.Printf("    carried flow via %-18s x%-8d %s -> %s\n",
					d.Object, d.Count, d.Src.Format(), d.Dst.Format())
			}
		}
		fmt.Println()
	}

	var before string
	if showIR {
		before = ir.FormatModule(p.Build(in))
	}
	par, err := core.Parallelize(p.Build(in), core.Options{})
	if err != nil {
		return err
	}
	if heaps {
		fmt.Print(par.Summary())
		for _, ri := range par.Regions {
			fmt.Printf("\npredicted locations:\n")
			for _, pl := range ri.Assign.Predictions {
				fmt.Printf("  @%s+%d (%d bytes) == %#x\n",
					pl.Global.Name, pl.Offset, pl.Size, pl.Value)
			}
			st := ri.TStats
			fmt.Printf("transformation: %d separation checks (+%d elided), "+
				"%d/%d privacy read/write checks, %d redux marks, %d predictions, %d cold guards\n",
				st.SeparationChecks, st.SeparationElided,
				st.PrivacyReads, st.PrivacyWrites, st.ReduxMarks, st.Predicts, st.ColdGuards)
		}
	}
	if showIR {
		fmt.Println("==== IR before transformation ====")
		fmt.Println(before)
		fmt.Println("==== IR after transformation and outlining ====")
		fmt.Println(ir.FormatModule(par.Mod))
	}
	return nil
}
